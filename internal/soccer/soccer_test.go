package soccer

import (
	"strings"
	"testing"

	"repro/internal/owl"
	"repro/internal/rdf"
)

// TestOntologyShapeFig2 pins the paper's reported ontology size: 79
// concepts and 95 properties (Section 3.2).
func TestOntologyShapeFig2(t *testing.T) {
	o := BuildOntology()
	if err := o.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := o.Stats()
	if s.Classes != 79 {
		t.Errorf("classes = %d, want 79", s.Classes)
	}
	if s.Properties() != 95 {
		t.Errorf("properties = %d, want 95", s.Properties())
	}
	if s.Restrictions < 4 {
		t.Errorf("restrictions = %d, want >= 4", s.Restrictions)
	}
	if s.DisjointPairs < 3 {
		t.Errorf("disjoint pairs = %d", s.DisjointPairs)
	}
}

func TestOntologyHierarchySpotChecks(t *testing.T) {
	o := BuildOntology()
	cases := []struct{ child, parent string }{
		{"LongPass", "Pass"},
		{"Pass", "PositiveEvent"},
		{"YellowCard", "Punishment"},
		{"SecondYellowCard", "RedCard"},
		{"Punishment", "NegativeEvent"},
		{"LeftBack", "DefencePlayer"},
		{"DefencePlayer", "Player"},
		{"GoalkeeperPlayer", "Player"},
		{"MissedPenalty", "Miss"},
		{"HandBall", "Foul"},
	}
	for _, c := range cases {
		cls := o.Class(c.child)
		if cls == nil {
			t.Errorf("class %s missing", c.child)
			continue
		}
		found := false
		for _, p := range cls.Parents {
			if p == o.IRI(c.parent) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s not a direct subclass of %s", c.child, c.parent)
		}
	}
}

func TestOntologyPropertyHierarchy(t *testing.T) {
	o := BuildOntology()
	for prop, parent := range map[string]string{
		"scorerPlayer":       "subjectPlayer",
		"punishedPlayer":     "subjectPlayer",
		"injuredPlayer":      "objectPlayer",
		"scoredToGoalkeeper": "objectPlayer",
		"scoringTeam":        "subjectTeam",
		"concedingTeam":      "objectTeam",
		"actorOfRedCard":     "actorOfNegativeMove",
		"actorOfGoal":        "actorOfPositiveMove",
	} {
		p := o.Property(prop)
		if p == nil {
			t.Errorf("property %s missing", prop)
			continue
		}
		found := false
		for _, par := range p.Parents {
			if par == o.IRI(parent) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s not a sub-property of %s", prop, parent)
		}
	}
}

func TestHierarchyStringContainsFig2Subtrees(t *testing.T) {
	h := BuildOntology().HierarchyString()
	for _, want := range []string{
		"Event\n",
		"  NegativeEvent\n",
		"    Punishment\n      RedCard",
		"    DefencePlayer\n",
	} {
		if !strings.Contains(h, want) {
			t.Errorf("hierarchy missing %q\n%s", want, h)
		}
	}
}

func TestPositionClass(t *testing.T) {
	cases := map[string]string{
		"GK": "GoalkeeperPlayer", "LB": "LeftBack", "RB": "RightBack",
		"CB": "CenterBack", "SW": "Sweeper", "DM": "DefensiveMidfielder",
		"CM": "CentralMidfielder", "AM": "AttackingMidfielder",
		"LW": "LeftWinger", "RW": "RightWinger", "CF": "CenterForward",
		"SS": "SecondStriker", "??": "Player", "": "Player",
	}
	o := BuildOntology()
	for pos, want := range cases {
		got := PositionClass(pos)
		if got != want {
			t.Errorf("PositionClass(%q) = %q, want %q", pos, got, want)
		}
		if o.Class(got) == nil {
			t.Errorf("PositionClass(%q) = %q is not an ontology class", pos, got)
		}
	}
}

func TestRulesParse(t *testing.T) {
	rs := Rules()
	if len(rs) < 15 {
		t.Errorf("rule set has %d rules", len(rs))
	}
	names := map[string]bool{}
	for _, r := range rs {
		if r.Name == "" {
			t.Errorf("unnamed rule: %s", r)
		}
		if names[r.Name] {
			t.Errorf("duplicate rule name %s", r.Name)
		}
		names[r.Name] = true
	}
	for _, want := range []string{"assistRule", "scoredToGoalkeeperRule", "actorRed", "homeWinRule"} {
		if !names[want] {
			t.Errorf("missing rule %s", want)
		}
	}
}

func TestRuleVocabularyDeclared(t *testing.T) {
	// Every pre: IRI mentioned in the rule text must be declared in the
	// ontology, so a typo in RuleText fails here rather than silently
	// never matching.
	o := BuildOntology()
	for _, r := range Rules() {
		check := func(term rdf.Term) {
			if !term.IsIRI() || !strings.HasPrefix(term.Value, rdf.NSSoccer) {
				return
			}
			name := term.LocalName()
			if o.Class(name) == nil && o.Property(name) == nil {
				t.Errorf("rule %s references undeclared term pre:%s", r.Name, name)
			}
		}
		for _, item := range r.Body {
			if item.Pattern != nil {
				check(item.Pattern.S.Term)
				check(item.Pattern.P.Term)
				check(item.Pattern.O.Term)
			} else {
				for _, a := range item.Builtin.Args {
					check(a.Term)
				}
			}
		}
		for _, h := range r.Head {
			check(h.S.Term)
			check(h.P.Term)
			check(h.O.Term)
		}
	}
}

func TestBuildTeams(t *testing.T) {
	teams := BuildTeams()
	if len(teams) != 8 {
		t.Fatalf("%d teams", len(teams))
	}
	shortSeen := map[string]int{}
	for _, tm := range teams {
		if len(tm.Players) != 11 {
			t.Errorf("%s has %d players", tm.Name, len(tm.Players))
		}
		if tm.Goalkeeper() == nil || tm.Goalkeeper().Position != "GK" {
			t.Errorf("%s goalkeeper wrong", tm.Name)
		}
		positions := map[string]bool{}
		for _, p := range tm.Players {
			positions[p.Position] = true
			shortSeen[p.Short]++
		}
		// Each lineup covers one player per position flavor, so every
		// position class gets individuals (Q-10 needs the defence subtree).
		for _, pos := range []string{"GK", "LB", "RB", "CB", "SW", "CF"} {
			if !positions[pos] {
				t.Errorf("%s lacks position %s", tm.Name, pos)
			}
		}
	}
	// Paper-named players must exist with the narration short names the
	// Table 3 queries use.
	for _, short := range []string{"Messi", "Casillas", "Alex", "Henry", "Ronaldo", "Daniel", "Florent", "Eto'o", "Raul"} {
		if shortSeen[short] == 0 {
			t.Errorf("no player with short name %q", short)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	if a.Stats() != b.Stats() {
		t.Errorf("stats differ: %s vs %s", a.Stats(), b.Stats())
	}
	for i := range a.Matches {
		ma, mb := a.Matches[i], b.Matches[i]
		if ma.ID != mb.ID || len(ma.Narrations) != len(mb.Narrations) {
			t.Fatalf("match %d differs", i)
		}
		for j := range ma.Narrations {
			if ma.Narrations[j] != mb.Narrations[j] {
				t.Fatalf("match %d narration %d differs: %q vs %q", i, j, ma.Narrations[j].Text, mb.Narrations[j].Text)
			}
		}
	}
}

func TestGenerateScale(t *testing.T) {
	c := Generate(DefaultConfig())
	if len(c.Matches) != 10 {
		t.Errorf("%d matches", len(c.Matches))
	}
	n := c.NarrationCount()
	// The paper's corpus: 1182 narrations over 10 matches.
	if n < 1150 || n > 1250 {
		t.Errorf("narrations = %d, want ~1180", n)
	}
	if c.TruthCount() < 700 {
		t.Errorf("truth events = %d", c.TruthCount())
	}
	if !strings.Contains(c.Stats(), "10 matches") {
		t.Errorf("Stats = %q", c.Stats())
	}
}

func TestGenerateInvariants(t *testing.T) {
	c := Generate(Config{Matches: 20, Seed: 99, NarrationsPerMatch: 118, PaperCoverage: true})
	for _, m := range c.Matches {
		if m.Home == m.Away {
			t.Fatalf("match %s: team plays itself", m.ID)
		}
		// Score equals goal list length.
		if len(m.Goals) != m.HomeScore+m.AwayScore {
			t.Errorf("match %s: %d goals listed for score %d-%d", m.ID, len(m.Goals), m.HomeScore, m.AwayScore)
		}
		// Narrations sorted by minute.
		for i := 1; i < len(m.Narrations); i++ {
			if m.Narrations[i].Minute < m.Narrations[i-1].Minute {
				t.Errorf("match %s: narrations unsorted at %d", m.ID, i)
				break
			}
		}
		// Truth narration indexes valid and injective.
		seen := map[int]bool{}
		for _, tr := range m.Truth {
			if tr.NarrationIdx < -1 || tr.NarrationIdx >= len(m.Narrations) {
				t.Errorf("match %s: bad narration index %d", m.ID, tr.NarrationIdx)
			}
			if tr.NarrationIdx >= 0 {
				if seen[tr.NarrationIdx] {
					t.Errorf("match %s: two truth events share narration %d", m.ID, tr.NarrationIdx)
				}
				seen[tr.NarrationIdx] = true
			}
		}
		// Every goal kind truth event has a subject of the right team.
		for _, tr := range m.Truth {
			if IsGoal(tr.Kind) && tr.Subject == nil {
				t.Errorf("match %s: goal without scorer", m.ID)
			}
		}
	}
}

func TestPaperCoverage(t *testing.T) {
	c := Generate(DefaultConfig())
	found := map[string]bool{}
	for _, m := range c.Matches {
		for i := range m.Truth {
			tr := &m.Truth[i]
			subj := ""
			if tr.Subject != nil {
				subj = tr.Subject.Short
			}
			switch {
			case IsGoal(tr.Kind) && subj == "Messi":
				found["messi goal"] = true
			case KindIn(tr.Kind, YellowCardKinds) && subj == "Alex":
				found["alex yellow"] = true
			case KindIn(tr.Kind, NegativeKinds) && subj == "Henry":
				found["henry negative"] = true
			case tr.Kind == KindFoul && subj == "Daniel" && tr.Object != nil && tr.Object.Short == "Florent":
				found["daniel fouls florent"] = true
			case tr.Kind == KindFoul && subj == "Florent" && tr.Object != nil && tr.Object.Short == "Daniel":
				found["florent fouls daniel"] = true
			case KindIn(tr.Kind, SaveKinds) && tr.SubjectTeam != nil && tr.SubjectTeam.Name == "Barcelona":
				found["barcelona save"] = true
			case IsGoal(tr.Kind) && ConcedingTeam(m, tr) != nil && ConcedingTeam(m, tr).Name == "Real Madrid":
				found["goal to casillas"] = true
			case subj == "Ronaldo":
				found["ronaldo event"] = true
			}
		}
	}
	for _, want := range []string{
		"messi goal", "alex yellow", "henry negative", "daniel fouls florent",
		"florent fouls daniel", "barcelona save", "goal to casillas", "ronaldo event",
	} {
		if !found[want] {
			t.Errorf("coverage event missing: %s", want)
		}
	}
}

func TestKindHelpers(t *testing.T) {
	if !IsGoal(KindHeaderGoal) || IsGoal(KindFoul) {
		t.Error("IsGoal wrong")
	}
	if !KindIn(KindSecondYellow, PunishmentKinds) {
		t.Error("second yellow not a punishment")
	}
	if !IsDefencePosition("CB") || IsDefencePosition("CF") {
		t.Error("IsDefencePosition wrong")
	}
}

func TestKindsMatchOntology(t *testing.T) {
	// Every EventKind string must be a declared ontology class, and the
	// kind groupings must agree with the class hierarchy.
	o := BuildOntology()
	all := [][]EventKind{GoalKinds, PunishmentKinds, ShootKinds, SaveKinds, YellowCardKinds, NegativeKinds}
	for _, set := range all {
		for _, k := range set {
			if o.Class(string(k)) == nil {
				t.Errorf("kind %s is not an ontology class", k)
			}
		}
	}
}

func TestCreditedAndConcedingTeam(t *testing.T) {
	teams := BuildTeams()
	m := &Match{Home: teams[0], Away: teams[1]}
	regular := &TruthEvent{Kind: KindGoal, SubjectTeam: teams[0]}
	if CreditedTeam(m, regular) != teams[0] || ConcedingTeam(m, regular) != teams[1] {
		t.Error("regular goal attribution wrong")
	}
	own := &TruthEvent{Kind: KindOwnGoal, SubjectTeam: teams[0]}
	if CreditedTeam(m, own) != teams[1] || ConcedingTeam(m, own) != teams[0] {
		t.Error("own goal attribution wrong")
	}
}

func TestNarrationGoalWordAbsence(t *testing.T) {
	// The linchpin of the Q-1 result: goal narrations must not contain the
	// word "goal" (UEFA writes "X scores!").
	c := Generate(DefaultConfig())
	for _, m := range c.Matches {
		for _, tr := range m.Truth {
			if !IsGoal(tr.Kind) || tr.NarrationIdx < 0 {
				continue
			}
			text := strings.ToLower(m.Narrations[tr.NarrationIdx].Text)
			if strings.Contains(text, "goal") {
				t.Errorf("goal narration contains 'goal': %q", text)
			}
		}
	}
}

func TestShortName(t *testing.T) {
	cases := map[string]string{
		"Lionel Messi":      "Messi",
		"Xavi Hernandez":    "Xavi",
		"Daniel Alves":      "Daniel",
		"Cristiano Ronaldo": "Ronaldo",
		"Edwin van der Sar": "Van der Sar",
		"Alex":              "Alex",
		"Raul Gonzalez":     "Raul",
	}
	for in, want := range cases {
		if got := shortName(in); got != want {
			t.Errorf("shortName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestOntologyPersistenceRoundTrip(t *testing.T) {
	// The full 79/95 soccer ontology must survive TBox serialization.
	src := BuildOntology()
	back, err := owl.FromGraph(src.TBoxGraph(), rdf.NSSoccer)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	ss, bs := src.Stats(), back.Stats()
	if bs.Classes != 79 || bs.Properties() != 95 {
		t.Errorf("reloaded ontology: %d classes, %d properties", bs.Classes, bs.Properties())
	}
	if bs.DisjointPairs != ss.DisjointPairs {
		t.Errorf("disjoint pairs: %d vs %d", bs.DisjointPairs, ss.DisjointPairs)
	}
	// Spot-check deep hierarchy and domains.
	if p := back.Property("actorOfRedCard"); p == nil || len(p.Parents) == 0 {
		t.Error("actorOfRedCard hierarchy lost")
	}
	if p := back.Property("scoredToGoalkeeper"); p == nil || p.Range != back.IRI("GoalkeeperPlayer") {
		t.Error("scoredToGoalkeeper range lost")
	}
}
