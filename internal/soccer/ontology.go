// Package soccer defines the application domain of the paper: the central
// soccer ontology of Section 3.2 (Fig. 2) and a deterministic match
// simulator that stands in for the UEFA/SporX crawl of Section 3.1.
//
// The simulator is the documented substitution for the paper's web corpus:
// it emits minute-by-minute narrations with the same linguistic shape as
// UEFA's ("Eto'o (Barcelona) scores!" never contains the word "goal"),
// and it keeps the ground-truth event log, which provides the relevance
// judgments the authors produced manually.
package soccer

import (
	"repro/internal/owl"
	"repro/internal/rdf"
)

// BuildOntology constructs the central soccer ontology: 79 concepts and 95
// properties, the sizes reported in Section 3.2. The hierarchy mirrors
// Fig. 2: a Person/Team/Match/Stadium backbone, a player-position taxonomy
// used by query Q-10 ("shoot defence players"), and an event taxonomy with
// the Positive/Negative/Neutral split exploited by queries Q-4 and Q-7.
func BuildOntology() *owl.Ontology {
	o := owl.New(rdf.NSSoccer)

	// --- Agents -----------------------------------------------------------
	o.AddClass("Person")
	o.AddClass("Player", "Person")
	o.AddClass("GoalkeeperPlayer", "Player")
	o.AddClass("DefencePlayer", "Player")
	o.AddClass("LeftBack", "DefencePlayer")
	o.AddClass("RightBack", "DefencePlayer")
	o.AddClass("CenterBack", "DefencePlayer")
	o.AddClass("Sweeper", "DefencePlayer")
	o.AddClass("MidfieldPlayer", "Player")
	o.AddClass("DefensiveMidfielder", "MidfieldPlayer")
	o.AddClass("CentralMidfielder", "MidfieldPlayer")
	o.AddClass("AttackingMidfielder", "MidfieldPlayer")
	o.AddClass("LeftWinger", "MidfieldPlayer")
	o.AddClass("RightWinger", "MidfieldPlayer")
	o.AddClass("ForwardPlayer", "Player")
	o.AddClass("CenterForward", "ForwardPlayer")
	o.AddClass("SecondStriker", "ForwardPlayer")
	o.AddClass("Referee", "Person")
	o.AddClass("AssistantReferee", "Referee")
	o.AddClass("FourthOfficial", "Referee")
	o.AddClass("Coach", "Person")

	// --- Organizations, venues, competitions ------------------------------
	o.AddClass("Team")
	o.AddClass("NationalTeam", "Team")
	o.AddClass("ClubTeam", "Team")
	o.AddClass("Match")
	o.AddClass("LeagueMatch", "Match")
	o.AddClass("CupMatch", "Match")
	o.AddClass("FriendlyMatch", "Match")
	o.AddClass("Stadium")
	o.AddClass("Tournament")
	o.AddClass("League", "Tournament")
	o.AddClass("Cup", "Tournament")
	o.AddClass("Season")

	// --- Events ------------------------------------------------------------
	o.AddClass("Event")
	o.AddClass("PositiveEvent", "Event")
	o.AddClass("NegativeEvent", "Event")
	o.AddClass("NeutralEvent", "Event")
	o.AddClass("UnknownEvent", "Event")

	o.AddClass("Goal", "PositiveEvent")
	o.AddClass("HeaderGoal", "Goal")
	o.AddClass("PenaltyGoal", "Goal")
	o.AddClass("FreeKickGoal", "Goal")
	// An own goal is a goal (it counts on the scoreboard), so it sits under
	// Goal rather than NegativeEvent — scorerPlayer's domain would otherwise
	// type every own goal as a (Positive) Goal and contradict the
	// Positive/Negative disjointness. Its negativity for the scorer is
	// carried by actorOfOwnGoal ⊑ actorOfNegativeMove instead.
	o.AddClass("OwnGoal", "Goal")
	o.AddClass("Assist", "PositiveEvent")
	o.AddClass("Pass", "PositiveEvent")
	o.AddClass("LongPass", "Pass")
	o.AddClass("ShortPass", "Pass")
	o.AddClass("CrossPass", "Pass")
	o.AddClass("ThroughPass", "Pass")
	o.AddClass("Shoot", "PositiveEvent")
	o.AddClass("ShotOnTarget", "Shoot")
	o.AddClass("ShotOffTarget", "Shoot")
	o.AddClass("HeaderShot", "Shoot")
	o.AddClass("Save", "PositiveEvent")
	o.AddClass("PenaltySave", "Save")
	o.AddClass("Tackle", "PositiveEvent")
	o.AddClass("Interception", "PositiveEvent")
	o.AddClass("Clearance", "PositiveEvent")
	o.AddClass("Dribble", "PositiveEvent")

	o.AddClass("Punishment", "NegativeEvent")
	o.AddClass("YellowCard", "Punishment")
	o.AddClass("RedCard", "Punishment")
	o.AddClass("SecondYellowCard", "RedCard")
	o.AddClass("Foul", "NegativeEvent")
	o.AddClass("HandBall", "Foul")
	o.AddClass("DangerousPlay", "Foul")
	o.AddClass("Offside", "NegativeEvent")
	o.AddClass("Miss", "NegativeEvent")
	o.AddClass("MissedPenalty", "Miss")
	o.AddClass("Injury", "NegativeEvent")

	o.AddClass("Substitution", "NeutralEvent")
	o.AddClass("Corner", "NeutralEvent")
	o.AddClass("FreeKick", "NeutralEvent")
	o.AddClass("PenaltyKick", "NeutralEvent")
	o.AddClass("ThrowIn", "NeutralEvent")
	o.AddClass("GoalKick", "NeutralEvent")
	o.AddClass("KickOff", "NeutralEvent")
	o.AddClass("HalfTimeWhistle", "NeutralEvent")
	o.AddClass("FullTimeWhistle", "NeutralEvent")

	o.AddDisjoint("PositiveEvent", "NegativeEvent")
	o.AddDisjoint("PositiveEvent", "NeutralEvent")
	o.AddDisjoint("NegativeEvent", "NeutralEvent")
	o.AddDisjoint("GoalkeeperPlayer", "ForwardPlayer")
	o.AddDisjoint("Team", "Person")
	o.AddDisjoint("Match", "Event")

	// --- Generic event properties (Section 3.4) ----------------------------
	// Every event-specific player/team property is a sub-property of one of
	// these four, which is how the population module fills the right slot
	// from the extractor's generic subject/object output.
	obj := func(name string, parents ...string) { o.AddObjectProperty(name, parents...) }
	obj("subjectPlayer")
	o.SetDomain("subjectPlayer", "Event")
	o.SetRange("subjectPlayer", "Player")
	obj("objectPlayer")
	o.SetDomain("objectPlayer", "Event")
	o.SetRange("objectPlayer", "Player")
	obj("subjectTeam")
	o.SetDomain("subjectTeam", "Event")
	o.SetRange("subjectTeam", "Team")
	obj("objectTeam")
	o.SetDomain("objectTeam", "Event")
	o.SetRange("objectTeam", "Team")
	obj("inMatch")
	o.SetDomain("inMatch", "Event")
	o.SetRange("inMatch", "Match")
	o.SetFunctional("inMatch")

	// Sub-properties of subjectPlayer, one per event type that has an actor.
	for prop, domain := range map[string]string{
		"scorerPlayer":       "Goal",
		"passingPlayer":      "Pass",
		"shootingPlayer":     "Shoot",
		"savingPlayer":       "Save",
		"foulingPlayer":      "Foul",
		"punishedPlayer":     "Punishment",
		"offsidePlayer":      "Offside",
		"missingPlayer":      "Miss",
		"tacklingPlayer":     "Tackle",
		"interceptingPlayer": "Interception",
		"clearingPlayer":     "Clearance",
		"dribblingPlayer":    "Dribble",
		"substitutedPlayer":  "Substitution",
		"cornerTaker":        "Corner",
		"freeKickTaker":      "FreeKick",
		"penaltyTaker":       "PenaltyKick",
		"throwInTaker":       "ThrowIn",
	} {
		obj(prop, "subjectPlayer")
		o.SetDomain(prop, domain)
		o.SetRange(prop, "Player")
	}

	// Sub-properties of objectPlayer.
	for prop, domain := range map[string]string{
		"passReceiver":       "Pass",
		"fouledPlayer":       "Foul",
		"injuredPlayer":      "Injury",
		"substitutePlayer":   "Substitution",
		"tackledPlayer":      "Tackle",
		"savedFromPlayer":    "Save",
		"scoredToGoalkeeper": "Goal",
		"dribbledPastPlayer": "Dribble",
		"assistedPlayer":     "Assist",
	} {
		obj(prop, "objectPlayer")
		o.SetDomain(prop, domain)
		o.SetRange(prop, "Player")
	}
	// The range restriction below is the paper's example of inferring an
	// individual's type from a restricted property value: whatever a goal is
	// scored to must be a goalkeeper.
	o.SetRange("scoredToGoalkeeper", "GoalkeeperPlayer")

	// Team-level sub-properties.
	obj("scoringTeam", "subjectTeam")
	o.SetDomain("scoringTeam", "Goal")
	obj("concedingTeam", "objectTeam")
	o.SetDomain("concedingTeam", "Goal")
	obj("foulingTeam", "subjectTeam")
	o.SetDomain("foulingTeam", "Foul")
	obj("fouledTeam", "objectTeam")
	o.SetDomain("fouledTeam", "Foul")

	// Match and team structure.
	for prop, dr := range map[string][2]string{
		"homeTeam":        {"Match", "Team"},
		"awayTeam":        {"Match", "Team"},
		"winnerTeam":      {"Match", "Team"},
		"loserTeam":       {"Match", "Team"},
		"playedAtStadium": {"Match", "Stadium"},
		"hasReferee":      {"Match", "Referee"},
		"inTournament":    {"Match", "Tournament"},
		"inSeason":        {"Match", "Season"},
		"playsFor":        {"Player", "Team"},
		"hasCoach":        {"Team", "Coach"},
		"hasGoalkeeper":   {"Team", "GoalkeeperPlayer"},
		"hasPlayer":       {"Team", "Player"},
		"hasCaptain":      {"Team", "Player"},
		"homeStadium":     {"Team", "Stadium"},
	} {
		obj(prop)
		o.SetDomain(prop, dr[0])
		o.SetRange(prop, dr[1])
	}

	// Actor property hierarchy (Player -> Event), exploited by Q-7 "henry
	// negative moves": the reasoner lifts actorOfOffside et al. to
	// actorOfNegativeMove via rdfs:subPropertyOf closure.
	obj("actorOfMove")
	o.SetDomain("actorOfMove", "Player")
	o.SetRange("actorOfMove", "Event")
	obj("actorOfPositiveMove", "actorOfMove")
	obj("actorOfNegativeMove", "actorOfMove")
	for prop, parent := range map[string]string{
		"actorOfGoal":       "actorOfPositiveMove",
		"actorOfAssist":     "actorOfPositiveMove",
		"actorOfSave":       "actorOfPositiveMove",
		"actorOfPass":       "actorOfPositiveMove",
		"actorOfShoot":      "actorOfPositiveMove",
		"actorOfTackle":     "actorOfPositiveMove",
		"actorOfDribble":    "actorOfPositiveMove",
		"actorOfFoul":       "actorOfNegativeMove",
		"actorOfOffside":    "actorOfNegativeMove",
		"actorOfMissedGoal": "actorOfNegativeMove",
		"actorOfYellowCard": "actorOfNegativeMove",
		"actorOfRedCard":    "actorOfNegativeMove",
		"actorOfOwnGoal":    "actorOfNegativeMove",
	} {
		obj(prop, parent)
	}

	// Cross-event link minted by the assist rule (Fig. 6).
	obj("assistOfGoal")
	o.SetDomain("assistOfGoal", "Assist")
	o.SetRange("assistOfGoal", "Goal")

	// --- Data properties ----------------------------------------------------
	intRange := rdf.NewIRI(rdf.XSDInteger)
	strRange := rdf.NewIRI(rdf.XSDString)
	dat := func(name, domain string, rng rdf.Term) {
		o.AddDataProperty(name)
		o.SetDomain(name, domain)
		o.SetRangeIRI(name, rng)
	}
	dat("inMinute", "Event", intRange)
	dat("inExtraMinute", "Event", intRange)
	dat("narration", "Event", strRange)
	// hasName is shared by persons and teams, so it carries no domain: a
	// domain of Person would make every named team an inferred Person and
	// trip the Team/Person disjointness axiom.
	o.AddDataProperty("hasName")
	o.SetRangeIRI("hasName", strRange)
	dat("hasFirstName", "Person", strRange)
	dat("hasLastName", "Person", strRange)
	dat("hasDate", "Match", rdf.NewIRI(rdf.XSDDate))
	dat("hasKickoffTime", "Match", strRange)
	dat("homeScore", "Match", intRange)
	dat("awayScore", "Match", intRange)
	dat("halfTimeHomeScore", "Match", intRange)
	dat("halfTimeAwayScore", "Match", intRange)
	dat("attendance", "Match", intRange)
	dat("matchDay", "Match", intRange)
	dat("shirtNumber", "Player", intRange)
	dat("hasAge", "Person", intRange)
	dat("hasNationality", "Person", strRange)
	dat("hasHeight", "Player", intRange)
	dat("hasCapacity", "Stadium", intRange)
	dat("hasCity", "Stadium", strRange)
	dat("hasCountry", "Stadium", strRange)
	dat("foundedYear", "Team", intRange)
	dat("hasSeasonYear", "Season", intRange)
	dat("cardReason", "Punishment", strRange)
	dat("goalDistance", "Shoot", intRange)
	dat("injuryDuration", "Injury", intRange)
	dat("passLength", "Pass", intRange)
	dat("isFirstHalf", "Event", rdf.NewIRI(rdf.XSDBoolean))
	dat("extractedBy", "Event", strRange)
	o.SetFunctional("inMinute")
	o.SetFunctional("hasName")

	// --- Restrictions (Section 3.5 examples) --------------------------------
	// "only the goalkeepers are allowed in the position of goalkeeping":
	o.ValueConstraint("Team", "hasGoalkeeper", "GoalkeeperPlayer")
	// "only one goalkeeper is allowed in the game":
	o.MaxCardinalityConstraint("Team", "hasGoalkeeper", 1)
	// Every goal has exactly one scorer slot filled at most once.
	o.MaxCardinalityConstraint("Goal", "scorerPlayer", 1)
	// Saves are made by goalkeepers.
	o.ValueConstraint("Save", "savingPlayer", "GoalkeeperPlayer")

	return o
}

// PositionClass maps a squad position name to its ontology class local name.
// The simulator assigns positions; ontology population asserts the specific
// class so classification can later lift it (LeftBack -> DefencePlayer ->
// Player), which is what Q-10 depends on.
func PositionClass(position string) string {
	switch position {
	case "GK":
		return "GoalkeeperPlayer"
	case "LB":
		return "LeftBack"
	case "RB":
		return "RightBack"
	case "CB":
		return "CenterBack"
	case "SW":
		return "Sweeper"
	case "DM":
		return "DefensiveMidfielder"
	case "CM":
		return "CentralMidfielder"
	case "AM":
		return "AttackingMidfielder"
	case "LW":
		return "LeftWinger"
	case "RW":
		return "RightWinger"
	case "CF":
		return "CenterForward"
	case "SS":
		return "SecondStriker"
	default:
		return "Player"
	}
}
