package soccer

import "fmt"

// Player is a squad member.
type Player struct {
	// Name is the display name used in narrations ("Samuel Eto'o").
	Name string
	// Short is the surname form narrations mostly use ("Eto'o").
	Short string
	// Position is the squad position code: GK, LB, RB, CB, SW, DM, CM, AM,
	// LW, RW, CF, SS. PositionClass maps it to the ontology.
	Position string
	// Shirt is the shirt number.
	Shirt int
}

// Team is a club with a fixed squad.
type Team struct {
	Name    string
	Coach   string
	Stadium string
	City    string
	// Players is the 11-player lineup, goalkeeper first.
	Players []*Player
}

// Goalkeeper returns the first GK in the lineup.
func (t *Team) Goalkeeper() *Player {
	for _, p := range t.Players {
		if p.Position == "GK" {
			return p
		}
	}
	return nil
}

// FindPlayer returns the squad player with the given short name, or nil.
func (t *Team) FindPlayer(short string) *Player {
	for _, p := range t.Players {
		if p.Short == short {
			return p
		}
	}
	return nil
}

// EventKind is an ontology event class local name ("Goal", "Foul", ...).
type EventKind string

// The event kinds the simulator produces and the extractor recognizes.
const (
	KindGoal          EventKind = "Goal"
	KindHeaderGoal    EventKind = "HeaderGoal"
	KindPenaltyGoal   EventKind = "PenaltyGoal"
	KindFreeKickGoal  EventKind = "FreeKickGoal"
	KindOwnGoal       EventKind = "OwnGoal"
	KindAssist        EventKind = "Assist"
	KindPass          EventKind = "Pass"
	KindLongPass      EventKind = "LongPass"
	KindShortPass     EventKind = "ShortPass"
	KindCrossPass     EventKind = "CrossPass"
	KindThroughPass   EventKind = "ThroughPass"
	KindShoot         EventKind = "Shoot"
	KindShotOnTarget  EventKind = "ShotOnTarget"
	KindShotOffTarget EventKind = "ShotOffTarget"
	KindHeaderShot    EventKind = "HeaderShot"
	KindSave          EventKind = "Save"
	KindPenaltySave   EventKind = "PenaltySave"
	KindTackle        EventKind = "Tackle"
	KindInterception  EventKind = "Interception"
	KindClearance     EventKind = "Clearance"
	KindDribble       EventKind = "Dribble"
	KindFoul          EventKind = "Foul"
	KindHandBall      EventKind = "HandBall"
	KindYellowCard    EventKind = "YellowCard"
	KindSecondYellow  EventKind = "SecondYellowCard"
	KindRedCard       EventKind = "RedCard"
	KindOffside       EventKind = "Offside"
	KindMissedGoal    EventKind = "Miss"
	KindMissedPenalty EventKind = "MissedPenalty"
	KindInjury        EventKind = "Injury"
	KindSubstitution  EventKind = "Substitution"
	KindCorner        EventKind = "Corner"
	KindFreeKick      EventKind = "FreeKick"
	KindPenaltyKick   EventKind = "PenaltyKick"
	KindThrowIn       EventKind = "ThrowIn"
	KindGoalKick      EventKind = "GoalKick"
	KindKickOff       EventKind = "KickOff"
	KindHalfTime      EventKind = "HalfTimeWhistle"
	KindFullTime      EventKind = "FullTimeWhistle"
	// KindUnknown marks color-commentary narrations with no extractable
	// event; the pipeline still indexes them (Section 3.4).
	KindUnknown EventKind = "UnknownEvent"
)

// TruthEvent is the simulator's ground-truth record of what a narration
// describes. The evaluation harness derives relevance judgments from these,
// substituting for the paper's manual assessments.
type TruthEvent struct {
	Kind   EventKind
	Minute int
	// Subject is the acting player (scorer, fouler, taker...), nil for
	// teamless events like the half-time whistle.
	Subject *Player
	// Object is the affected player (fouled, receiver, keeper...), may be nil.
	Object *Player
	// SubjectTeam is the acting player's team (or the event's team for
	// subject-less events), may be nil.
	SubjectTeam *Team
	// ObjectTeam is the affected team, may be nil.
	ObjectTeam *Team
	// NarrationIdx indexes Match.Narrations; -1 for basic-info-only events.
	NarrationIdx int
}

// Narration is one minute-by-minute commentary line.
type Narration struct {
	Minute int
	Text   string
}

// GoalInfo is a goal as listed in the crawled basic information (the
// UEFA page lists scorers and minutes separately from the narration feed).
type GoalInfo struct {
	Minute int
	Scorer *Player
	Team   *Team
	// OwnGoal marks the goal as an own goal.
	OwnGoal bool
}

// SubInfo is a substitution in the basic information.
type SubInfo struct {
	Minute int
	Off    *Player
	On     *Player
	Team   *Team
}

// Match bundles everything the crawler obtains for one game: basic
// information plus narrations, and (simulator-only) the ground truth.
type Match struct {
	// ID is a stable identifier like "Chelsea_Barcelona_2009-05-06".
	ID string
	// Home and Away are the competing teams.
	Home, Away *Team
	// Date is ISO formatted (yyyy-mm-dd).
	Date string
	// Referee officiates the match.
	Referee string
	// HomeScore and AwayScore are the final score.
	HomeScore, AwayScore int
	// Goals, Substitutions: the basic information of the crawl.
	Goals         []GoalInfo
	Substitutions []SubInfo
	// Narrations is the minute-by-minute feed.
	Narrations []Narration
	// Truth is the ground-truth event log (one entry per event; color
	// narrations have no entry).
	Truth []TruthEvent
}

// Teams returns home and away.
func (m *Match) Teams() [2]*Team { return [2]*Team{m.Home, m.Away} }

// OpponentOf returns the other team of the match.
func (m *Match) OpponentOf(t *Team) *Team {
	if t == m.Home {
		return m.Away
	}
	return m.Home
}

// TeamOf returns the team whose lineup contains p, or nil.
func (m *Match) TeamOf(p *Player) *Team {
	for _, t := range m.Teams() {
		for _, q := range t.Players {
			if q == p {
				return t
			}
		}
	}
	return nil
}

// Corpus is the full crawled data set.
type Corpus struct {
	Teams   []*Team
	Matches []*Match
}

// Stats summarizes corpus size for logs and the experiment reports.
func (c *Corpus) Stats() string {
	narr, events := 0, 0
	for _, m := range c.Matches {
		narr += len(m.Narrations)
		events += len(m.Truth)
	}
	return fmt.Sprintf("%d matches, %d narrations, %d ground-truth events",
		len(c.Matches), narr, events)
}

// NarrationCount returns the total narration count across matches.
func (c *Corpus) NarrationCount() int {
	n := 0
	for _, m := range c.Matches {
		n += len(m.Narrations)
	}
	return n
}

// TruthCount returns the total ground-truth event count across matches.
func (c *Corpus) TruthCount() int {
	n := 0
	for _, m := range c.Matches {
		n += len(m.Truth)
	}
	return n
}
