package soccer

// Fixed squads for the simulated corpus. The rosters deliberately contain
// the players the paper's evaluation queries name — Messi at Barcelona
// (Q-3), Casillas in goal for Real Madrid (Q-6), Alex (Q-5), Henry (Q-7),
// Ronaldo (Q-8), and Daniel and Florent for the phrasal experiment of
// Table 6 — so the Table 3 query set is meaningful against the synthetic
// corpus. Everything else is invented.

// position layout of every lineup: a 4-4-2-ish 11 with one of each flavor
// so classification inference has the full position taxonomy to work with.
var lineupPositions = [11]string{"GK", "LB", "RB", "CB", "SW", "DM", "CM", "AM", "RW", "CF", "SS"}

type squadSpec struct {
	name    string
	coach   string
	stadium string
	city    string
	players [11]string // full names, position order as lineupPositions
}

var squadSpecs = []squadSpec{
	{
		name: "Barcelona", coach: "Pep Guardiola", stadium: "Camp Nou", city: "Barcelona",
		players: [11]string{
			"Victor Valdes", "Eric Abidal", "Daniel Alves", "Gerard Pique", "Carles Puyol",
			"Sergio Busquets", "Xavi Hernandez", "Andres Iniesta", "Lionel Messi",
			"Samuel Eto'o", "Thierry Henry",
		},
	},
	{
		name: "Chelsea", coach: "Guus Hiddink", stadium: "Stamford Bridge", city: "London",
		players: [11]string{
			"Petr Cech", "Ashley Cole", "Jose Bosingwa", "John Terry", "Alex",
			"Michael Essien", "Michael Ballack", "Frank Lampard", "Florent Malouda",
			"Didier Drogba", "Nicolas Anelka",
		},
	},
	{
		name: "Manchester United", coach: "Alex Ferguson", stadium: "Old Trafford", city: "Manchester",
		players: [11]string{
			"Edwin van der Sar", "Patrice Evra", "John O'Shea", "Nemanja Vidic", "Rio Ferdinand",
			"Michael Carrick", "Paul Scholes", "Anderson", "Ryan Giggs",
			"Wayne Rooney", "Cristiano Ronaldo",
		},
	},
	{
		name: "Real Madrid", coach: "Juande Ramos", stadium: "Santiago Bernabeu", city: "Madrid",
		players: [11]string{
			"Iker Casillas", "Gabriel Heinze", "Sergio Ramos", "Fabio Cannavaro", "Pepe",
			"Fernando Gago", "Lassana Diarra", "Wesley Sneijder", "Arjen Robben",
			"Raul Gonzalez", "Gonzalo Higuain",
		},
	},
	{
		name: "Liverpool", coach: "Rafael Benitez", stadium: "Anfield", city: "Liverpool",
		players: [11]string{
			"Pepe Reina", "Fabio Aurelio", "Alvaro Arbeloa", "Jamie Carragher", "Martin Skrtel",
			"Javier Mascherano", "Xabi Alonso", "Steven Gerrard", "Dirk Kuyt",
			"Fernando Torres", "Ryan Babel",
		},
	},
	{
		name: "Arsenal", coach: "Arsene Wenger", stadium: "Emirates Stadium", city: "London",
		players: [11]string{
			"Manuel Almunia", "Gael Clichy", "Bacary Sagna", "Kolo Toure", "William Gallas",
			"Alex Song", "Cesc Fabregas", "Samir Nasri", "Theo Walcott",
			"Emmanuel Adebayor", "Robin van Persie",
		},
	},
	{
		name: "Bayern Munich", coach: "Jurgen Klinsmann", stadium: "Allianz Arena", city: "Munich",
		players: [11]string{
			"Michael Rensing", "Philipp Lahm", "Christian Lell", "Lucio", "Daniel Van Buyten",
			"Mark van Bommel", "Bastian Schweinsteiger", "Franck Ribery", "Hamit Altintop",
			"Miroslav Klose", "Luca Toni",
		},
	},
	{
		name: "Inter Milan", coach: "Jose Mourinho", stadium: "San Siro", city: "Milan",
		players: [11]string{
			"Julio Cesar", "Cristian Chivu", "Maicon", "Walter Samuel", "Ivan Cordoba",
			"Esteban Cambiasso", "Javier Zanetti", "Dejan Stankovic", "Mancini",
			"Zlatan Ibrahimovic", "Adriano",
		},
	},
}

var refereeNames = []string{
	"Tom Henning Ovrebo", "Massimo Busacca", "Howard Webb", "Roberto Rosetti",
	"Frank De Bleeckere", "Peter Frojdfeldt", "Lubos Michel", "Kyros Vassaras",
}

// shortName derives the narration surname from a full name: the last
// space-separated component, except for players conventionally known by a
// single or non-final name.
func shortName(full string) string {
	switch full {
	case "Alex", "Anderson", "Pepe", "Lucio", "Maicon", "Mancini", "Adriano":
		return full
	case "Xavi Hernandez":
		return "Xavi"
	case "Raul Gonzalez":
		return "Raul"
	case "Daniel Alves":
		return "Daniel"
	case "Florent Malouda":
		return "Florent"
	case "Cristiano Ronaldo":
		return "Ronaldo"
	case "Edwin van der Sar":
		return "Van der Sar"
	case "Daniel Van Buyten":
		return "Van Buyten"
	case "Mark van Bommel":
		return "Van Bommel"
	case "Robin van Persie":
		return "Van Persie"
	}
	last := full
	for i := len(full) - 1; i >= 0; i-- {
		if full[i] == ' ' {
			last = full[i+1:]
			break
		}
	}
	return last
}

// LineupPositions returns the position layout every generated lineup
// follows — the hook internal/corpus uses to synthesize squads with the
// same position taxonomy the ontology classifies.
func LineupPositions() [11]string { return lineupPositions }

// BuildTeams instantiates the fixed squads.
func BuildTeams() []*Team {
	teams := make([]*Team, len(squadSpecs))
	for i, spec := range squadSpecs {
		t := &Team{Name: spec.name, Coach: spec.coach, Stadium: spec.stadium, City: spec.city}
		for j, full := range spec.players {
			t.Players = append(t.Players, &Player{
				Name:     full,
				Short:    shortName(full),
				Position: lineupPositions[j],
				Shirt:    j + 1,
			})
		}
		teams[i] = t
	}
	return teams
}
