package feedback

import (
	"strings"
	"testing"

	"repro/internal/crawler"
	"repro/internal/semindex"
	"repro/internal/soccer"
)

func testIndex(t testing.TB) *semindex.SemanticIndex {
	t.Helper()
	c := soccer.Generate(soccer.Config{Matches: 2, Seed: 42, NarrationsPerMatch: 60, PaperCoverage: true})
	return semindex.NewBuilder().Build(semindex.FullInf, crawler.PagesFromCorpus(c))
}

// TestVocabularyLearning is the canonical future-work scenario: "spot
// kick" is folk vocabulary for a penalty that appears nowhere in the
// corpus; after confident click feedback, the query works.
func TestVocabularyLearning(t *testing.T) {
	si := testIndex(t)
	if hits := si.Search("spot kick", 0); hasKind(hits, "PenaltyGoal") || hasKind(hits, "PenaltyKick") {
		t.Skip("corpus accidentally matches 'spot kick'; adjust seed")
	}

	// Find a penalty document to click on.
	target := -1
	for id := 0; id < si.Index.NumDocs(); id++ {
		if strings.HasPrefix(si.Index.Doc(id).Get("_kind"), "Penalty") {
			target = id
			break
		}
	}
	if target < 0 {
		t.Skip("no penalty event in tiny corpus")
	}

	tr := NewTracker(si)
	tr.RecordClick("spot kick", target)
	if got := tr.LearnedTerms(target); len(got) != 0 {
		t.Errorf("single click already learned: %v", got)
	}
	tr.RecordClick("spot kick", target)
	if got := tr.LearnedTerms(target); len(got) != 2 { // "spot", "kick"
		t.Fatalf("LearnedTerms = %v", got)
	}

	expanded := tr.Rebuild()
	hits := SearchWithFeedback(expanded, "spot", 5)
	found := false
	for _, h := range hits {
		if h.DocID == target {
			found = true
		}
	}
	if !found {
		t.Error("learned vocabulary did not retrieve the clicked document")
	}
	// The original index is untouched.
	if si.Index.DocFreq(FieldFeedback, "spot") != 0 {
		t.Error("Rebuild mutated the source index")
	}
}

func TestClickBoostImprovesRanking(t *testing.T) {
	si := testIndex(t)
	hits := si.Search("foul", 10)
	if len(hits) < 3 {
		t.Skip("not enough fouls")
	}
	// Click the third-ranked foul repeatedly for the same query.
	clicked := hits[2].DocID
	tr := NewTracker(si)
	for i := 0; i < 3; i++ {
		tr.RecordClick("foul", clicked)
	}
	again := SearchWithFeedback(tr.Rebuild(), "foul", 10)
	posBefore, posAfter := rankOf(hits, clicked), rankOfFeedback(again, clicked)
	if posAfter < 0 {
		t.Fatal("clicked doc missing after rebuild")
	}
	if posAfter >= posBefore {
		t.Errorf("click boost did not improve rank: %d -> %d", posBefore, posAfter)
	}
}

func TestRecordClickBounds(t *testing.T) {
	si := testIndex(t)
	tr := NewTracker(si)
	tr.RecordClick("goal", -1)
	tr.RecordClick("goal", 1<<30)
	if len(tr.clicks) != 0 {
		t.Error("out-of-range clicks recorded")
	}
}

func TestRebuildWithoutClicksIsEquivalent(t *testing.T) {
	si := testIndex(t)
	rebuilt := NewTracker(si).Rebuild()
	a := si.Search("goal", 5)
	b := rebuilt.Search("goal", 5)
	if len(a) != len(b) {
		t.Fatalf("hit counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].DocID != b[i].DocID {
			t.Errorf("rank %d differs: %d vs %d", i, a[i].DocID, b[i].DocID)
		}
	}
}

func hasKind(hits []semindex.Hit, kind string) bool {
	for _, h := range hits {
		if h.Meta("_kind") == kind {
			return true
		}
	}
	return false
}

func rankOf(hits []semindex.Hit, docID int) int {
	for i, h := range hits {
		if h.DocID == docID {
			return i
		}
	}
	return -1
}

func rankOfFeedback(hits []semindex.Hit, docID int) int { return rankOf(hits, docID) }
