// Package feedback implements the paper's final future-work item (Section
// 8): "a mechanism that expands the index automatically according to the
// user feedback".
//
// The mechanism is click-through vocabulary learning. When a user clicks a
// result, the query's terms evidently describe that document in the user's
// vocabulary — even when the document's own text doesn't contain them
// (searching "spot kick", browsing to the penalty document, clicking).
// The tracker accumulates clicks and, above a confidence threshold, folds
// the learned terms into a dedicated feedback field of a rebuilt index, so
// the next user typing "spot kick" retrieves the penalty documents
// directly. Rebuilding (rather than mutating) matches the paper's stance
// that the index is a cheap, regenerable layer above the ontology.
package feedback

import (
	"sort"
	"strings"

	"repro/internal/index"
	"repro/internal/semindex"
)

// FieldFeedback is the index field learned terms are written into.
const FieldFeedback = "feedback"

// FeedbackBoost is the query-time weight of the learned field: below the
// ontological fields (it is folk vocabulary, not extraction) but above
// free text.
const FeedbackBoost = 1.3

// Tracker accumulates click-through evidence for one semantic index.
type Tracker struct {
	// MinClicks is the confidence threshold before a (term, doc) pair is
	// folded into the index; default 2 — a single click is noise.
	MinClicks int

	si *semindex.SemanticIndex
	// clicks counts query-term clicks per document.
	clicks map[int]map[string]int
}

// NewTracker wraps an index.
func NewTracker(si *semindex.SemanticIndex) *Tracker {
	return &Tracker{MinClicks: 2, si: si, clicks: map[int]map[string]int{}}
}

// RecordClick notes that a user issued the query and clicked the document.
func (t *Tracker) RecordClick(query string, docID int) {
	if docID < 0 || docID >= t.si.Index.NumDocs() {
		return
	}
	terms := index.Tokenize(strings.ToLower(query))
	m := t.clicks[docID]
	if m == nil {
		m = map[string]int{}
		t.clicks[docID] = m
	}
	for _, term := range terms {
		m[term]++
	}
}

// LearnedTerms returns the terms that reached the confidence threshold for
// a document, sorted.
func (t *Tracker) LearnedTerms(docID int) []string {
	min := t.MinClicks
	if min <= 0 {
		min = 2
	}
	var out []string
	for term, n := range t.clicks[docID] {
		if n >= min {
			out = append(out, term)
		}
	}
	sort.Strings(out)
	return out
}

// Rebuild produces a new semantic index with the learned terms appended as
// the feedback field of each clicked document. The original index is
// untouched.
func (t *Tracker) Rebuild() *semindex.SemanticIndex {
	src := t.si.Index
	out := index.New(src.Analyzer())
	for id := 0; id < src.NumDocs(); id++ {
		d := &index.Document{Fields: append([]index.Field(nil), src.Doc(id).Fields...)}
		if terms := t.LearnedTerms(id); len(terms) > 0 {
			d.Add(FieldFeedback, strings.Join(terms, " "))
		}
		out.Add(d)
	}
	return &semindex.SemanticIndex{Level: t.si.Level, Index: out}
}

// SearchWithFeedback queries a rebuilt index with the standard semantic
// boosts extended by the feedback field.
func SearchWithFeedback(si *semindex.SemanticIndex, query string, limit int) []semindex.Hit {
	boosts := append(append([]index.FieldBoost(nil), semindex.QueryBoosts...),
		index.FieldBoost{Field: FieldFeedback, Boost: FeedbackBoost})
	return si.SearchWithBoosts(query, limit, boosts)
}
