package reasoner

import (
	"strings"
	"testing"

	"repro/internal/owl"
	"repro/internal/rdf"
)

func TestMaterializeExplainedMatchesMaterialize(t *testing.T) {
	r := newSoccerReasoner(t)
	o := r.Ontology()
	m := owl.NewModel(o)
	goal := m.NewIndividual("HeaderGoal")
	m.Set(goal, "scorerPlayer", m.NamedIndividual("Messi", "RightWinger"))
	m.Set(goal, "scoredToGoalkeeper", m.NamedIndividual("Casillas", "Player"))

	plain := r.Materialize(m)
	explained, expl := r.MaterializeExplained(m)
	if plain.Graph.Len() != explained.Graph.Len() {
		t.Fatalf("explained closure %d triples, plain %d", explained.Graph.Len(), plain.Graph.Len())
	}
	for _, tr := range plain.Graph.All() {
		if !explained.Graph.Has(tr) {
			t.Fatalf("explained closure missing %v", tr)
		}
	}
	// Every non-asserted triple has an explanation.
	for _, tr := range explained.Graph.All() {
		if m.Graph.Has(tr) {
			continue
		}
		if _, ok := expl[tr]; !ok {
			t.Errorf("no explanation for derived triple %v", tr)
		}
	}
}

func TestExplanationContent(t *testing.T) {
	r := newSoccerReasoner(t)
	o := r.Ontology()
	m := owl.NewModel(o)
	g := m.NewIndividual("HeaderGoal")
	_, expl := r.MaterializeExplained(m)

	tr := rdf.NewTriple(g, rdf.RDFType, o.IRI("Goal"))
	e, ok := expl[tr]
	if !ok {
		t.Fatal("HeaderGoal -> Goal lift unexplained")
	}
	if e.Rule != "subClassOf" || !strings.Contains(e.Axiom, "HeaderGoal ⊑ Goal") {
		t.Errorf("explanation = %+v", e)
	}
	if len(e.Premises) != 1 {
		t.Errorf("premises = %v", e.Premises)
	}
	if !strings.Contains(e.String(), "subClassOf") {
		t.Errorf("String() = %q", e.String())
	}
}

func TestExplainChainToAssertions(t *testing.T) {
	r := newSoccerReasoner(t)
	o := r.Ontology()
	m := owl.NewModel(o)
	goal := m.NewIndividual("Goal")
	keeper := m.NamedIndividual("Casillas", "Player")
	m.Set(goal, "scoredToGoalkeeper", keeper)
	_, expl := r.MaterializeExplained(m)

	// Casillas : GoalkeeperPlayer comes from the range restriction; its
	// chain must bottom out at the asserted scoredToGoalkeeper triple.
	target := rdf.NewTriple(keeper, rdf.RDFType, o.IRI("GoalkeeperPlayer"))
	chain := ExplainChain(expl, target)
	if len(chain) < 2 {
		t.Fatalf("chain too short: %v", chain)
	}
	if chain[0].Rule != "range" {
		t.Errorf("first step rule = %s", chain[0].Rule)
	}
	foundAsserted := false
	for _, e := range chain {
		if e.Rule == "asserted" {
			foundAsserted = true
		}
	}
	if !foundAsserted {
		t.Error("chain never reached an asserted fact")
	}
}

func TestExplainFullPipelineProperty(t *testing.T) {
	// Over a real populated match, explained materialization equals plain
	// materialization triple-for-triple.
	r := newSoccerReasoner(t)
	o := r.Ontology()
	m := owl.NewModel(o)
	// A small slice of real-ish structure.
	match := m.NamedIndividual("M1", "Match")
	team := m.NamedIndividual("Barcelona", "Team")
	messi := m.NamedIndividual("Messi", "RightWinger")
	m.Set(messi, "playsFor", team)
	goal := m.NewIndividual("PenaltyGoal")
	m.Set(goal, "scorerPlayer", messi)
	m.Set(goal, "inMatch", match)

	plain := r.Materialize(m)
	explained, _ := r.MaterializeExplained(m)
	if plain.Graph.Len() != explained.Graph.Len() {
		t.Errorf("closure sizes differ: %d vs %d", plain.Graph.Len(), explained.Graph.Len())
	}
}
