// Package reasoner implements the description-logic inference services the
// paper obtains from Pellet (Section 3.5): classification, realization,
// property-hierarchy closure, domain/range type inference, restriction-based
// type inference and consistency checking.
//
// The soccer ontology lives in the fragment where saturation (computing the
// deductive closure by forward application of the schema axioms) is sound
// and complete, so Materialize produces exactly the entailed ABox a tableau
// reasoner would report. All reasoning runs offline over one per-match model
// at a time, matching the paper's scalability design: inference cost per
// game is independent of corpus size.
package reasoner

import (
	"fmt"
	"sort"

	"repro/internal/owl"
	"repro/internal/rdf"
)

// Reasoner answers TBox queries and materializes ABox entailments for a
// fixed ontology. Construction precomputes the class and property closures
// (classification), so a single Reasoner is shared across all matches.
type Reasoner struct {
	ont *owl.Ontology

	// classAnc maps each class to all its ancestors (not including itself).
	classAnc map[rdf.Term][]rdf.Term
	// propAnc maps each property to all its ancestor properties.
	propAnc map[rdf.Term][]rdf.Term
	// disjointClosed maps each class to the set of classes it is disjoint
	// with, including disjointness inherited from ancestors.
	disjointClosed map[rdf.Term]map[rdf.Term]bool
}

// New classifies the ontology and returns a reasoner over it. The ontology
// must Validate() cleanly; New panics on a cyclic hierarchy because closure
// computation would not terminate meaningfully.
func New(ont *owl.Ontology) *Reasoner {
	if err := ont.Validate(); err != nil {
		panic(fmt.Sprintf("reasoner: invalid ontology: %v", err))
	}
	r := &Reasoner{
		ont:            ont,
		classAnc:       make(map[rdf.Term][]rdf.Term),
		propAnc:        make(map[rdf.Term][]rdf.Term),
		disjointClosed: make(map[rdf.Term]map[rdf.Term]bool),
	}
	for _, c := range ont.Classes() {
		r.classAnc[c.IRI] = closure(c.IRI, func(t rdf.Term) []rdf.Term {
			if cl := ont.ClassByIRI(t); cl != nil {
				return cl.Parents
			}
			return nil
		})
	}
	for _, p := range ont.Properties() {
		r.propAnc[p.IRI] = closure(p.IRI, func(t rdf.Term) []rdf.Term {
			if pr := ont.PropertyByIRI(t); pr != nil {
				return pr.Parents
			}
			return nil
		})
	}
	// Disjointness propagates down the hierarchy: if A ⊥ B then every
	// subclass of A is disjoint with every subclass of B. We close upward:
	// X ⊥ Y iff some ancestor-or-self of X is declared disjoint with some
	// ancestor-or-self of Y. Precompute the declared sets lifted to self.
	for _, c := range ont.Classes() {
		set := make(map[rdf.Term]bool)
		for _, a := range append([]rdf.Term{c.IRI}, r.classAnc[c.IRI]...) {
			for _, d := range ont.DisjointWith(a) {
				set[d] = true
			}
		}
		if len(set) > 0 {
			r.disjointClosed[c.IRI] = set
		}
	}
	return r
}

// closure returns the transitive closure of parents(t), excluding t itself,
// in sorted order.
func closure(t rdf.Term, parents func(rdf.Term) []rdf.Term) []rdf.Term {
	seen := map[rdf.Term]bool{t: true}
	var out []rdf.Term
	stack := append([]rdf.Term(nil), parents(t)...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
		stack = append(stack, parents(n)...)
	}
	rdf.SortTerms(out)
	return out
}

// Ontology returns the classified ontology.
func (r *Reasoner) Ontology() *owl.Ontology { return r.ont }

// Ancestors returns all strict superclasses of the class.
func (r *Reasoner) Ancestors(class rdf.Term) []rdf.Term {
	return append([]rdf.Term(nil), r.classAnc[class]...)
}

// PropertyAncestors returns all strict super-properties of the property.
func (r *Reasoner) PropertyAncestors(prop rdf.Term) []rdf.Term {
	return append([]rdf.Term(nil), r.propAnc[prop]...)
}

// IsSubClassOf reports whether sub is equal to or a descendant of super.
func (r *Reasoner) IsSubClassOf(sub, super rdf.Term) bool {
	if sub == super {
		return true
	}
	for _, a := range r.classAnc[sub] {
		if a == super {
			return true
		}
	}
	return false
}

// SubClasses returns every strict descendant of the class, sorted. This is
// what the query-expansion baseline uses to expand "punishment" into
// "yellow card" and "red card".
func (r *Reasoner) SubClasses(super rdf.Term) []rdf.Term {
	var out []rdf.Term
	for _, c := range r.ont.Classes() {
		if c.IRI != super && r.IsSubClassOf(c.IRI, super) {
			out = append(out, c.IRI)
		}
	}
	rdf.SortTerms(out)
	return out
}

// AreDisjoint reports whether the two classes are disjoint, taking the
// hierarchy into account.
func (r *Reasoner) AreDisjoint(a, b rdf.Term) bool {
	bAll := append([]rdf.Term{b}, r.classAnc[b]...)
	if set := r.disjointClosed[a]; set != nil {
		for _, x := range bAll {
			if set[x] {
				return true
			}
		}
	}
	return false
}

// Materialize returns a new model containing the input assertions plus the
// deductive closure under the ontology: type closure along rdfs:subClassOf,
// statement closure along rdfs:subPropertyOf, domain and range type
// inference, and allValuesFrom type inference. The input model is not
// modified (the pipeline still needs the pre-inference state to build the
// FULL_EXT index).
func (r *Reasoner) Materialize(m *owl.Model) *owl.Model {
	out := m.Clone()
	g := out.Graph
	// Saturate to fixpoint: each pass applies every inference pattern once;
	// a pass that adds nothing terminates the loop. The soccer schema
	// stratifies shallowly, so two or three passes suffice in practice.
	for {
		added := false
		// Type closure along the class hierarchy.
		for _, t := range g.Match(rdf.Wildcard, rdf.RDFType, rdf.Wildcard) {
			for _, anc := range r.classAnc[t.O] {
				if g.AddSPO(t.S, rdf.RDFType, anc) {
					added = true
				}
			}
		}
		// Property closure, domain and range inference.
		for _, p := range r.ont.Properties() {
			for _, t := range g.Match(rdf.Wildcard, p.IRI, rdf.Wildcard) {
				for _, anc := range r.propAnc[p.IRI] {
					if g.AddSPO(t.S, anc, t.O) {
						added = true
					}
				}
				if !p.Domain.IsZero() {
					if g.AddSPO(t.S, rdf.RDFType, p.Domain) {
						added = true
					}
				}
				if p.Kind == owl.ObjectProperty && !p.Range.IsZero() && !t.O.IsLiteral() {
					if g.AddSPO(t.O, rdf.RDFType, p.Range) {
						added = true
					}
				}
			}
		}
		// allValuesFrom: for i : C and (i p v), infer v : F.
		for _, rest := range r.ont.Restrictions() {
			if rest.Kind != owl.AllValuesFrom {
				continue
			}
			for _, ti := range g.Match(rdf.Wildcard, rdf.RDFType, rest.OnClass) {
				for _, tv := range g.Match(ti.S, rest.OnProperty, rdf.Wildcard) {
					if tv.O.IsLiteral() {
						continue
					}
					if g.AddSPO(tv.O, rdf.RDFType, rest.Filler) {
						added = true
					}
				}
			}
		}
		if !added {
			return out
		}
	}
}

// DirectTypes realizes the individual: its most specific types, i.e. the
// asserted/inferred types with no other type below them.
func (r *Reasoner) DirectTypes(m *owl.Model, ind rdf.Term) []rdf.Term {
	all := m.Graph.Objects(ind, rdf.RDFType)
	var out []rdf.Term
	for _, c := range all {
		specific := true
		for _, d := range all {
			if d != c && r.IsSubClassOf(d, c) {
				specific = false
				break
			}
		}
		if specific {
			out = append(out, c)
		}
	}
	rdf.SortTerms(out)
	return out
}

// Violation describes one consistency failure found by CheckConsistency.
type Violation struct {
	// Individual is the node the violation is about.
	Individual rdf.Term
	// Kind is one of "disjoint", "maxCardinality" or "functional".
	Kind string
	// Detail is a human-readable explanation.
	Detail string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s (%s)", v.Kind, v.Individual.LocalName(), v.Detail)
}

// CheckConsistency reports every contradiction in the (ideally already
// materialized) model: individuals typed by disjoint classes, violated
// maxCardinality restrictions, and functional properties with multiple
// distinct values. An empty slice means the ABox is consistent. Run it on
// the Materialize output, since violations often only appear after closure
// (the paper's "only goalkeepers in the goalkeeping position" example
// requires the inferred types).
func (r *Reasoner) CheckConsistency(m *owl.Model) []Violation {
	var out []Violation
	g := m.Graph

	// Disjointness: collect each individual's types once.
	types := make(map[rdf.Term][]rdf.Term)
	for _, t := range g.Match(rdf.Wildcard, rdf.RDFType, rdf.Wildcard) {
		types[t.S] = append(types[t.S], t.O)
	}
	inds := make([]rdf.Term, 0, len(types))
	for ind := range types {
		inds = append(inds, ind)
	}
	rdf.SortTerms(inds)
	for _, ind := range inds {
		ts := types[ind]
		rdf.SortTerms(ts)
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				if r.AreDisjoint(ts[i], ts[j]) {
					out = append(out, Violation{
						Individual: ind,
						Kind:       "disjoint",
						Detail:     fmt.Sprintf("typed both %s and %s", ts[i].LocalName(), ts[j].LocalName()),
					})
				}
			}
		}
	}

	// maxCardinality restrictions.
	for _, rest := range r.ont.Restrictions() {
		if rest.Kind != owl.MaxCardinality {
			continue
		}
		for _, ti := range g.Match(rdf.Wildcard, rdf.RDFType, rest.OnClass) {
			vals := g.Objects(ti.S, rest.OnProperty)
			if len(vals) > rest.Cardinality {
				out = append(out, Violation{
					Individual: ti.S,
					Kind:       "maxCardinality",
					Detail: fmt.Sprintf("%d values of %s, at most %d allowed",
						len(vals), rest.OnProperty.LocalName(), rest.Cardinality),
				})
			}
		}
	}

	// Functional properties.
	for _, p := range r.ont.Properties() {
		if !p.Functional {
			continue
		}
		counts := make(map[rdf.Term]int)
		for _, t := range g.Match(rdf.Wildcard, p.IRI, rdf.Wildcard) {
			counts[t.S]++
		}
		subjects := make([]rdf.Term, 0, len(counts))
		for s, n := range counts {
			if n > 1 {
				subjects = append(subjects, s)
			}
		}
		rdf.SortTerms(subjects)
		for _, s := range subjects {
			out = append(out, Violation{
				Individual: s,
				Kind:       "functional",
				Detail:     fmt.Sprintf("%d values of functional property %s", counts[s], p.IRI.LocalName()),
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Individual != out[j].Individual {
			return out[i].Individual.Value < out[j].Individual.Value
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}
