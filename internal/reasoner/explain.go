package reasoner

import (
	"fmt"

	"repro/internal/owl"
	"repro/internal/rdf"
)

// Explanation describes how one triple entered the materialized model.
type Explanation struct {
	// Triple is the derived statement.
	Triple rdf.Triple
	// Rule names the inference pattern: "asserted", "subClassOf",
	// "subPropertyOf", "domain", "range" or "allValuesFrom".
	Rule string
	// Premises are the triples the step consumed.
	Premises []rdf.Triple
	// Axiom renders the schema axiom used, e.g. "HeaderGoal ⊑ Goal".
	Axiom string
}

// String renders the explanation for humans.
func (e Explanation) String() string {
	s := fmt.Sprintf("%v  [%s", e.Triple, e.Rule)
	if e.Axiom != "" {
		s += ": " + e.Axiom
	}
	return s + "]"
}

// MaterializeExplained is Materialize with a derivation record: the second
// return value explains every triple of the output that was not asserted
// in the input. It exists for the "why is this in my results?" question a
// knowledge-base operator asks when an inferred index surprises them.
func (r *Reasoner) MaterializeExplained(m *owl.Model) (*owl.Model, map[rdf.Triple]Explanation) {
	out := m.Clone()
	g := out.Graph
	expl := map[rdf.Triple]Explanation{}
	record := func(t rdf.Triple, rule, axiom string, premises ...rdf.Triple) bool {
		if !g.Add(t) {
			return false
		}
		expl[t] = Explanation{Triple: t, Rule: rule, Axiom: axiom, Premises: premises}
		return true
	}
	for {
		added := false
		for _, t := range g.Match(rdf.Wildcard, rdf.RDFType, rdf.Wildcard) {
			for _, anc := range r.classAnc[t.O] {
				axiom := fmt.Sprintf("%s ⊑ %s", t.O.LocalName(), anc.LocalName())
				if record(rdf.Triple{S: t.S, P: rdf.RDFType, O: anc}, "subClassOf", axiom, t) {
					added = true
				}
			}
		}
		for _, p := range r.ont.Properties() {
			for _, t := range g.Match(rdf.Wildcard, p.IRI, rdf.Wildcard) {
				for _, anc := range r.propAnc[p.IRI] {
					axiom := fmt.Sprintf("%s ⊑ %s", p.IRI.LocalName(), anc.LocalName())
					if record(rdf.Triple{S: t.S, P: anc, O: t.O}, "subPropertyOf", axiom, t) {
						added = true
					}
				}
				if !p.Domain.IsZero() {
					axiom := fmt.Sprintf("domain(%s) = %s", p.IRI.LocalName(), p.Domain.LocalName())
					if record(rdf.Triple{S: t.S, P: rdf.RDFType, O: p.Domain}, "domain", axiom, t) {
						added = true
					}
				}
				if p.Kind == owl.ObjectProperty && !p.Range.IsZero() && !t.O.IsLiteral() {
					axiom := fmt.Sprintf("range(%s) = %s", p.IRI.LocalName(), p.Range.LocalName())
					if record(rdf.Triple{S: t.O, P: rdf.RDFType, O: p.Range}, "range", axiom, t) {
						added = true
					}
				}
			}
		}
		for _, rest := range r.ont.Restrictions() {
			if rest.Kind != owl.AllValuesFrom {
				continue
			}
			for _, ti := range g.Match(rdf.Wildcard, rdf.RDFType, rest.OnClass) {
				for _, tv := range g.Match(ti.S, rest.OnProperty, rdf.Wildcard) {
					if tv.O.IsLiteral() {
						continue
					}
					axiom := fmt.Sprintf("%s ⊑ ∀%s.%s",
						rest.OnClass.LocalName(), rest.OnProperty.LocalName(), rest.Filler.LocalName())
					if record(rdf.Triple{S: tv.O, P: rdf.RDFType, O: rest.Filler}, "allValuesFrom", axiom, ti, tv) {
						added = true
					}
				}
			}
		}
		if !added {
			return out, expl
		}
	}
}

// ExplainChain walks an explanation back to asserted triples, returning the
// full derivation as a list ordered from conclusion to axioms. Triples with
// no explanation are asserted facts and terminate branches.
func ExplainChain(expl map[rdf.Triple]Explanation, t rdf.Triple) []Explanation {
	var out []Explanation
	seen := map[rdf.Triple]bool{}
	var walk func(rdf.Triple)
	walk = func(cur rdf.Triple) {
		if seen[cur] {
			return
		}
		seen[cur] = true
		e, ok := expl[cur]
		if !ok {
			out = append(out, Explanation{Triple: cur, Rule: "asserted"})
			return
		}
		out = append(out, e)
		for _, p := range e.Premises {
			walk(p)
		}
	}
	walk(t)
	return out
}
