package reasoner

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/soccer"
)

func newSoccerReasoner(t testing.TB) *Reasoner {
	t.Helper()
	return New(soccer.BuildOntology())
}

func TestNewPanicsOnInvalidOntology(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New did not panic on cyclic ontology")
		}
	}()
	o := owl.New(rdf.NSSoccer)
	o.AddClass("A", "B")
	o.AddClass("B", "A")
	New(o)
}

func TestClassificationFig5(t *testing.T) {
	// Fig. 5: the inferred class hierarchy of LongPass is
	// LongPass ⊑ Pass ⊑ PositiveEvent ⊑ Event.
	r := newSoccerReasoner(t)
	o := r.Ontology()
	anc := r.Ancestors(o.IRI("LongPass"))
	want := []string{"Event", "Pass", "PositiveEvent"}
	if len(anc) != len(want) {
		t.Fatalf("Ancestors(LongPass) = %v, want %v", anc, want)
	}
	for i, w := range want {
		if anc[i] != o.IRI(w) {
			t.Errorf("ancestor[%d] = %v, want %s", i, anc[i], w)
		}
	}
}

func TestIsSubClassOf(t *testing.T) {
	r := newSoccerReasoner(t)
	o := r.Ontology()
	cases := []struct {
		sub, super string
		want       bool
	}{
		{"LongPass", "Event", true},
		{"LongPass", "LongPass", true},
		{"YellowCard", "Punishment", true},
		{"SecondYellowCard", "Punishment", true}, // two levels via RedCard
		{"LeftBack", "DefencePlayer", true},
		{"LeftBack", "Player", true},
		{"Goal", "NegativeEvent", false},
		{"Event", "Goal", false},
	}
	for _, c := range cases {
		if got := r.IsSubClassOf(o.IRI(c.sub), o.IRI(c.super)); got != c.want {
			t.Errorf("IsSubClassOf(%s, %s) = %v, want %v", c.sub, c.super, got, c.want)
		}
	}
}

func TestSubClassesForQueryExpansion(t *testing.T) {
	r := newSoccerReasoner(t)
	o := r.Ontology()
	subs := r.SubClasses(o.IRI("Punishment"))
	names := localNames(subs)
	if !contains(names, "YellowCard") || !contains(names, "RedCard") || !contains(names, "SecondYellowCard") {
		t.Errorf("SubClasses(Punishment) = %v", names)
	}
	if contains(names, "Punishment") {
		t.Error("SubClasses included the class itself")
	}
}

func TestPropertyAncestors(t *testing.T) {
	r := newSoccerReasoner(t)
	o := r.Ontology()
	anc := localNames(r.PropertyAncestors(o.IRI("actorOfRedCard")))
	if !contains(anc, "actorOfNegativeMove") || !contains(anc, "actorOfMove") {
		t.Errorf("PropertyAncestors(actorOfRedCard) = %v", anc)
	}
	if contains(anc, "actorOfPositiveMove") {
		t.Error("actorOfRedCard lifted to the positive branch")
	}
}

func TestMaterializeTypeClosure(t *testing.T) {
	r := newSoccerReasoner(t)
	o := r.Ontology()
	m := owl.NewModel(o)
	g := m.NewIndividual("HeaderGoal")
	inf := r.Materialize(m)
	for _, want := range []string{"HeaderGoal", "Goal", "PositiveEvent", "Event"} {
		if !inf.Graph.HasSPO(g, rdf.RDFType, o.IRI(want)) {
			t.Errorf("materialized model missing type %s", want)
		}
	}
	// The source model must be untouched.
	if len(m.Types(g)) != 1 {
		t.Error("Materialize mutated its input")
	}
}

func TestMaterializePropertyClosure(t *testing.T) {
	r := newSoccerReasoner(t)
	o := r.Ontology()
	m := owl.NewModel(o)
	goal := m.NewIndividual("Goal")
	messi := m.NamedIndividual("Messi", "Player")
	m.Set(goal, "scorerPlayer", messi)
	inf := r.Materialize(m)
	if !inf.Graph.HasSPO(goal, o.IRI("subjectPlayer"), messi) {
		t.Error("scorerPlayer not lifted to subjectPlayer")
	}
}

func TestMaterializeDomainRangeInference(t *testing.T) {
	r := newSoccerReasoner(t)
	o := r.Ontology()
	m := owl.NewModel(o)
	// Assert scorerPlayer on an untyped node: domain says it is a Goal,
	// range says the value is a Player; closure lifts both to Event/Person.
	e := o.IRI("mystery_event")
	p := o.IRI("mystery_player")
	m.Graph.AddSPO(e, o.IRI("scorerPlayer"), p)
	inf := r.Materialize(m)
	if !inf.Graph.HasSPO(e, rdf.RDFType, o.IRI("Goal")) {
		t.Error("domain inference missed Goal")
	}
	if !inf.Graph.HasSPO(e, rdf.RDFType, o.IRI("Event")) {
		t.Error("domain closure missed Event")
	}
	if !inf.Graph.HasSPO(p, rdf.RDFType, o.IRI("Player")) {
		t.Error("range inference missed Player")
	}
	if !inf.Graph.HasSPO(p, rdf.RDFType, o.IRI("Person")) {
		t.Error("range closure missed Person")
	}
}

func TestMaterializeScoredToGoalkeeperRange(t *testing.T) {
	// The paper's example: a property whose range is restricted to a class
	// types its values — whoever a goal is scored to is a GoalkeeperPlayer.
	r := newSoccerReasoner(t)
	o := r.Ontology()
	m := owl.NewModel(o)
	goal := m.NewIndividual("Goal")
	keeper := m.NamedIndividual("Casillas", "Player")
	m.Set(goal, "scoredToGoalkeeper", keeper)
	inf := r.Materialize(m)
	if !inf.Graph.HasSPO(keeper, rdf.RDFType, o.IRI("GoalkeeperPlayer")) {
		t.Error("range restriction did not type Casillas as GoalkeeperPlayer")
	}
}

func TestMaterializeAllValuesFrom(t *testing.T) {
	r := newSoccerReasoner(t)
	o := r.Ontology()
	m := owl.NewModel(o)
	team := m.NamedIndividual("Barcelona", "Team")
	victor := m.NamedIndividual("Victor_Valdes", "Player")
	m.Set(team, "hasGoalkeeper", victor)
	inf := r.Materialize(m)
	if !inf.Graph.HasSPO(victor, rdf.RDFType, o.IRI("GoalkeeperPlayer")) {
		t.Error("allValuesFrom did not infer GoalkeeperPlayer")
	}
}

func TestDirectTypesRealization(t *testing.T) {
	r := newSoccerReasoner(t)
	o := r.Ontology()
	m := owl.NewModel(o)
	g := m.NewIndividual("HeaderGoal")
	inf := r.Materialize(m)
	direct := r.DirectTypes(inf, g)
	if len(direct) != 1 || direct[0] != o.IRI("HeaderGoal") {
		t.Errorf("DirectTypes = %v, want [HeaderGoal]", localNames(direct))
	}
}

func TestAreDisjointInherited(t *testing.T) {
	r := newSoccerReasoner(t)
	o := r.Ontology()
	// Goal ⊑ PositiveEvent and Foul ⊑ NegativeEvent: disjointness of the
	// parents must propagate to the children.
	if !r.AreDisjoint(o.IRI("Goal"), o.IRI("Foul")) {
		t.Error("Goal and Foul not disjoint via inherited axiom")
	}
	if !r.AreDisjoint(o.IRI("Foul"), o.IRI("Goal")) {
		t.Error("disjointness not symmetric")
	}
	if r.AreDisjoint(o.IRI("Goal"), o.IRI("HeaderGoal")) {
		t.Error("class disjoint with its own subclass")
	}
}

func TestCheckConsistencyClean(t *testing.T) {
	r := newSoccerReasoner(t)
	o := r.Ontology()
	m := owl.NewModel(o)
	goal := m.NewIndividual("Goal")
	m.Set(goal, "scorerPlayer", m.NamedIndividual("Messi", "Player"))
	if v := r.CheckConsistency(r.Materialize(m)); len(v) != 0 {
		t.Errorf("violations on clean model: %v", v)
	}
}

func TestCheckConsistencyDisjoint(t *testing.T) {
	r := newSoccerReasoner(t)
	o := r.Ontology()
	m := owl.NewModel(o)
	e := o.IRI("weird")
	m.Graph.AddSPO(e, rdf.RDFType, o.IRI("Goal"))
	m.Graph.AddSPO(e, rdf.RDFType, o.IRI("Foul"))
	vs := r.CheckConsistency(r.Materialize(m))
	if len(vs) == 0 {
		t.Fatal("disjointness violation not detected")
	}
	if vs[0].Kind != "disjoint" {
		t.Errorf("kind = %s", vs[0].Kind)
	}
	if !strings.Contains(vs[0].String(), "weird") {
		t.Errorf("String() = %q", vs[0].String())
	}
}

func TestCheckConsistencyMaxCardinality(t *testing.T) {
	// "Only one goalkeeper is allowed in the game."
	r := newSoccerReasoner(t)
	o := r.Ontology()
	m := owl.NewModel(o)
	team := m.NamedIndividual("Chelsea", "Team")
	m.Set(team, "hasGoalkeeper", m.NamedIndividual("Cech", "GoalkeeperPlayer"))
	m.Set(team, "hasGoalkeeper", m.NamedIndividual("Hilario", "GoalkeeperPlayer"))
	vs := r.CheckConsistency(r.Materialize(m))
	found := false
	for _, v := range vs {
		if v.Kind == "maxCardinality" && v.Individual == team {
			found = true
		}
	}
	if !found {
		t.Errorf("maxCardinality violation not found: %v", vs)
	}
}

func TestCheckConsistencyFunctional(t *testing.T) {
	r := newSoccerReasoner(t)
	o := r.Ontology()
	m := owl.NewModel(o)
	g := m.NewIndividual("Goal")
	m.SetInt(g, "inMinute", 10)
	m.SetInt(g, "inMinute", 12)
	vs := r.CheckConsistency(m)
	found := false
	for _, v := range vs {
		if v.Kind == "functional" {
			found = true
		}
	}
	if !found {
		t.Errorf("functional violation not found: %v", vs)
	}
}

func TestMaterializeIdempotent(t *testing.T) {
	r := newSoccerReasoner(t)
	o := r.Ontology()
	m := owl.NewModel(o)
	goal := m.NewIndividual("PenaltyGoal")
	m.Set(goal, "scorerPlayer", m.NamedIndividual("Messi", "Player"))
	m.Set(goal, "scoredToGoalkeeper", m.NamedIndividual("Casillas", "Player"))
	once := r.Materialize(m)
	twice := r.Materialize(once)
	if once.Graph.Len() != twice.Graph.Len() {
		t.Errorf("Materialize not idempotent: %d then %d triples", once.Graph.Len(), twice.Graph.Len())
	}
}

// Property: materialization is monotone (never loses triples) and closed
// under subclass lifting for every asserted type.
func TestMaterializeMonotoneProperty(t *testing.T) {
	r := newSoccerReasoner(t)
	o := r.Ontology()
	classes := o.Classes()
	f := func(picks []uint8) bool {
		m := owl.NewModel(o)
		for _, p := range picks {
			c := classes[int(p)%len(classes)]
			m.NewIndividual(c.IRI.LocalName())
		}
		inf := r.Materialize(m)
		for _, tr := range m.Graph.All() {
			if !inf.Graph.Has(tr) {
				return false
			}
		}
		for _, tr := range inf.Graph.Match(rdf.Wildcard, rdf.RDFType, rdf.Wildcard) {
			for _, anc := range r.Ancestors(tr.O) {
				if !inf.Graph.HasSPO(tr.S, rdf.RDFType, anc) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func localNames(ts []rdf.Term) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.LocalName()
	}
	return out
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
