package sparql

import (
	"testing"

	"repro/internal/inference"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/soccer"
)

func testGraph() *rdf.Graph {
	g := rdf.NewGraph()
	pre := func(s string) rdf.Term { return rdf.NewIRI(rdf.NSSoccer + s) }
	add := func(s rdf.Term, p string, o rdf.Term) { g.AddSPO(s, pre(p), o) }
	g1, g2, f1 := pre("goal1"), pre("goal2"), pre("foul1")
	g.AddSPO(g1, rdf.RDFType, pre("Goal"))
	g.AddSPO(g2, rdf.RDFType, pre("Goal"))
	g.AddSPO(f1, rdf.RDFType, pre("Foul"))
	add(g1, "scorerPlayer", pre("Messi"))
	add(g2, "scorerPlayer", pre("Etoo"))
	add(f1, "foulingPlayer", pre("Alex"))
	add(g1, "inMinute", rdf.NewInt(10))
	add(g2, "inMinute", rdf.NewInt(70))
	add(pre("Messi"), "playsFor", pre("Barcelona"))
	add(pre("Etoo"), "playsFor", pre("Barcelona"))
	return g
}

func TestSelectBGP(t *testing.T) {
	q := MustParse(`SELECT ?g ?p WHERE { ?g a pre:Goal . ?g pre:scorerPlayer ?p . }`)
	sols := q.Exec(testGraph())
	if len(sols) != 2 {
		t.Fatalf("%d solutions", len(sols))
	}
	if sols[0]["p"].LocalName() != "Etoo" && sols[1]["p"].LocalName() != "Etoo" {
		t.Errorf("missing Etoo: %v", sols)
	}
}

func TestSelectJoinAcrossEntities(t *testing.T) {
	q := MustParse(`SELECT ?g WHERE {
		?g a pre:Goal .
		?g pre:scorerPlayer ?p .
		?p pre:playsFor pre:Barcelona .
	}`)
	if sols := q.Exec(testGraph()); len(sols) != 2 {
		t.Errorf("%d solutions", len(sols))
	}
}

func TestFilterNumeric(t *testing.T) {
	q := MustParse(`SELECT ?g WHERE { ?g pre:inMinute ?m . FILTER(?m > 45) }`)
	sols := q.Exec(testGraph())
	if len(sols) != 1 || sols[0]["g"].LocalName() != "goal2" {
		t.Errorf("solutions = %v", sols)
	}
	q = MustParse(`SELECT ?g WHERE { ?g pre:inMinute ?m . FILTER(?m <= 10) }`)
	if sols := q.Exec(testGraph()); len(sols) != 1 {
		t.Errorf("<= filter: %v", sols)
	}
}

func TestFilterEquality(t *testing.T) {
	q := MustParse(`SELECT ?g WHERE { ?g a pre:Goal . ?g pre:scorerPlayer ?p . FILTER(?p != pre:Messi) }`)
	sols := q.Exec(testGraph())
	if len(sols) != 1 || sols[0]["g"].LocalName() != "goal2" {
		t.Errorf("!= filter: %v", sols)
	}
}

func TestDistinctAndLimit(t *testing.T) {
	q := MustParse(`SELECT DISTINCT ?team WHERE { ?p pre:playsFor ?team . }`)
	if sols := q.Exec(testGraph()); len(sols) != 1 {
		t.Errorf("DISTINCT: %v", sols)
	}
	q = MustParse(`SELECT ?p WHERE { ?p pre:playsFor ?team . } LIMIT 1`)
	if sols := q.Exec(testGraph()); len(sols) != 1 {
		t.Errorf("LIMIT: %v", sols)
	}
}

func TestSelectStar(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?g a pre:Goal . ?g pre:inMinute ?m . }`)
	sols := q.Exec(testGraph())
	if len(sols) != 2 {
		t.Fatalf("%d solutions", len(sols))
	}
	if _, ok := sols[0]["m"]; !ok {
		t.Error("star projection dropped ?m")
	}
}

func TestRepeatedVariableJoin(t *testing.T) {
	g := testGraph()
	g.AddSPO(rdf.NewIRI(rdf.NSSoccer+"weird"), rdf.NewIRI(rdf.NSSoccer+"marks"), rdf.NewIRI(rdf.NSSoccer+"weird"))
	q := MustParse(`SELECT ?x WHERE { ?x pre:marks ?x . }`)
	sols := q.Exec(g)
	if len(sols) != 1 || sols[0]["x"].LocalName() != "weird" {
		t.Errorf("self join: %v", sols)
	}
}

func TestDeterministicOrder(t *testing.T) {
	q := MustParse(`SELECT ?p WHERE { ?p pre:playsFor pre:Barcelona . }`)
	a := q.Exec(testGraph())
	b := q.Exec(testGraph())
	for i := range a {
		if a[i]["p"] != b[i]["p"] {
			t.Fatal("solution order unstable")
		}
	}
	if a[0]["p"].LocalName() != "Etoo" {
		t.Errorf("order = %v", a)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`WHERE { ?a ?b ?c }`,
		`SELECT WHERE { ?a ?b ?c . }`,
		`SELECT ?x WHERE { }`,
		`SELECT ?x WHERE { ?x a pre:Goal .`,
		`SELECT ?x WHERE { ?x a nope:Goal . }`,
		`SELECT ?x WHERE { ?x a pre:Goal . } LIMIT many`,
		`SELECT ?x WHERE { ?x a pre:Goal . FILTER(?x ~ 3) }`,
		`SELECT ?x WHERE { ?x a pre:Goal . FILTER(?x > ?y) }`,
		`SELECT ?x WHERE { ?x a "unterminated }`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}

// TestSPARQLAsUpperBound runs the paper's Q-4 as a formal query over a real
// inferred match model: SPARQL retrieves exactly the punishment individuals,
// the precision/recall ceiling the keyword system approaches.
func TestSPARQLAsUpperBound(t *testing.T) {
	ont := soccer.BuildOntology()
	r := reasoner.New(ont)
	m := owl.NewModel(ont)
	card := m.NewIndividual("YellowCard")
	m.Set(card, "punishedPlayer", m.NamedIndividual("Alex", "Sweeper"))
	red := m.NewIndividual("RedCard")
	m.Set(red, "punishedPlayer", m.NamedIndividual("Drogba", "CenterForward"))
	m.NewIndividual("Foul") // not a punishment
	res := inference.Run(r, soccer.Rules(), m)

	q := MustParse(`SELECT DISTINCT ?e WHERE { ?e a pre:Punishment . }`)
	sols := q.Exec(res.Model.Graph)
	if len(sols) != 2 {
		t.Fatalf("SPARQL found %d punishments, want 2: %v", len(sols), sols)
	}
}

func TestFilterLexicalComparison(t *testing.T) {
	g := rdf.NewGraph()
	pre := func(s string) rdf.Term { return rdf.NewIRI(rdf.NSSoccer + s) }
	g.AddSPO(pre("m1"), pre("hasDate"), rdf.NewLiteral("2009-03-04"))
	g.AddSPO(pre("m2"), pre("hasDate"), rdf.NewLiteral("2009-05-20"))
	q := MustParse(`SELECT ?m WHERE { ?m pre:hasDate ?d . FILTER(?d > "2009-04-01") }`)
	sols := q.Exec(g)
	if len(sols) != 1 || sols[0]["m"].LocalName() != "m2" {
		t.Errorf("lexical date filter: %v", sols)
	}
	q = MustParse(`SELECT ?m WHERE { ?m pre:hasDate ?d . FILTER(?d = "2009-03-04") }`)
	if sols := q.Exec(g); len(sols) != 1 {
		t.Errorf("equality on literal: %v", sols)
	}
	q = MustParse(`SELECT ?m WHERE { ?m pre:hasDate ?d . FILTER(?d >= "2009-03-04") }`)
	if sols := q.Exec(g); len(sols) != 2 {
		t.Errorf(">= filter: %v", sols)
	}
}

func TestFilterUnboundVariableFails(t *testing.T) {
	g := testGraph()
	q := MustParse(`SELECT ?g WHERE { ?g a pre:Goal . FILTER(?missing > 1) }`)
	if sols := q.Exec(g); len(sols) != 0 {
		t.Errorf("unbound filter variable passed: %v", sols)
	}
}

func TestCommentsInQuery(t *testing.T) {
	q := MustParse(`
# find the goals
SELECT ?g WHERE {
  ?g a pre:Goal . # typed pattern
}`)
	if sols := q.Exec(testGraph()); len(sols) != 2 {
		t.Errorf("comments broke parsing: %v", sols)
	}
}

func TestLiteralObjectPattern(t *testing.T) {
	g := rdf.NewGraph()
	pre := func(s string) rdf.Term { return rdf.NewIRI(rdf.NSSoccer + s) }
	g.AddSPO(pre("p1"), pre("hasName"), rdf.NewLiteral("Lionel Messi"))
	q := MustParse(`SELECT ?p WHERE { ?p pre:hasName "Lionel Messi" . }`)
	if sols := q.Exec(g); len(sols) != 1 {
		t.Errorf("literal object: %v", sols)
	}
}

func TestFullIRIPattern(t *testing.T) {
	q := MustParse(`SELECT ?g WHERE { ?g <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ceng.metu.edu.tr/soccer#Goal> . }`)
	if sols := q.Exec(testGraph()); len(sols) != 2 {
		t.Errorf("full IRIs: %v", sols)
	}
}
