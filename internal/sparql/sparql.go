// Package sparql implements the SPARQL subset the paper positions as the
// formal-query upper bound (Sections 2 and 8): basic graph patterns over a
// triple store with FILTER comparisons, DISTINCT, and LIMIT.
//
// The paper argues keyword search over the semantic index "can get close
// to the performance of SPARQL, which is the best that can be achieved
// with semantic querying"; this package supplies that comparator, and the
// benchmarks contrast its per-query graph traversal cost with the inverted
// index's constant-time lookups.
package sparql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Query is a parsed SELECT query.
type Query struct {
	// Vars are the projected variable names (without '?'); nil means '*'.
	Vars []string
	// Distinct deduplicates solutions.
	Distinct bool
	// Limit caps the solution count; 0 means unlimited.
	Limit int
	// Patterns are the BGP triple patterns.
	Patterns []Pattern
	// Filters constrain bound values.
	Filters []Filter
}

// Pattern is one triple pattern; empty Var means the Term is concrete.
type Pattern struct {
	S, P, O Node
}

// Node is a variable or a concrete term.
type Node struct {
	Var  string
	Term rdf.Term
}

// IsVar reports whether the node is a variable.
func (n Node) IsVar() bool { return n.Var != "" }

// Filter is a comparison constraint on a variable.
type Filter struct {
	Var string
	// Op is one of "=", "!=", "<", ">", "<=", ">=".
	Op string
	// Value is the comparison operand.
	Value rdf.Term
}

// Solution is one result row: variable name to bound term.
type Solution map[string]rdf.Term

// Parse reads the subset grammar:
//
//	SELECT [DISTINCT] ?a ?b | *
//	WHERE { pattern . pattern . FILTER(?v > 10) . }
//	[LIMIT n]
//
// Prefixed names resolve against rdf.Prefixes; <IRIs>, "literals",
// integers and the keyword 'a' (rdf:type) are accepted in patterns.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseQuery()
}

// MustParse panics on parse errors, for queries embedded in source.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic("sparql: " + err.Error())
	}
	return q
}

// Exec evaluates the query against the graph. Solutions are returned in a
// deterministic order (sorted by their projected bindings).
func (q *Query) Exec(g *rdf.Graph) []Solution {
	var out []Solution
	q.join(g, 0, Solution{}, &out)
	if q.Distinct {
		out = dedupe(out, q.Vars)
	}
	sort.Slice(out, func(i, j int) bool { return solutionKey(out[i], q.Vars) < solutionKey(out[j], q.Vars) })
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

func (q *Query) join(g *rdf.Graph, i int, b Solution, out *[]Solution) {
	if i == len(q.Patterns) {
		if !q.passFilters(b) {
			return
		}
		*out = append(*out, q.project(b))
		return
	}
	pat := q.Patterns[i]
	resolve := func(n Node) rdf.Term {
		if n.IsVar() {
			return b[n.Var]
		}
		return n.Term
	}
	for _, t := range g.Match(resolve(pat.S), resolve(pat.P), resolve(pat.O)) {
		var bound []string
		ok := true
		try := func(n Node, v rdf.Term) {
			if !ok || !n.IsVar() {
				return
			}
			if cur, has := b[n.Var]; has {
				if cur != v {
					ok = false
				}
				return
			}
			b[n.Var] = v
			bound = append(bound, n.Var)
		}
		try(pat.S, t.S)
		try(pat.P, t.P)
		try(pat.O, t.O)
		if ok {
			q.join(g, i+1, b, out)
		}
		for _, v := range bound {
			delete(b, v)
		}
	}
}

func (q *Query) passFilters(b Solution) bool {
	for _, f := range q.Filters {
		v, ok := b[f.Var]
		if !ok {
			return false
		}
		if !compareTerms(v, f.Op, f.Value) {
			return false
		}
	}
	return true
}

func compareTerms(v rdf.Term, op string, w rdf.Term) bool {
	// Numeric comparison when both parse as integers, else lexical.
	vi, vok := v.Int()
	wi, wok := w.Int()
	var cmp int
	if vok && wok {
		switch {
		case vi < wi:
			cmp = -1
		case vi > wi:
			cmp = 1
		}
	} else {
		cmp = strings.Compare(v.Value, w.Value)
	}
	switch op {
	case "=":
		return v == w || (vok && wok && cmp == 0)
	case "!=":
		return !(v == w || (vok && wok && cmp == 0))
	case "<":
		return cmp < 0
	case ">":
		return cmp > 0
	case "<=":
		return cmp <= 0
	case ">=":
		return cmp >= 0
	}
	return false
}

func (q *Query) project(b Solution) Solution {
	if q.Vars == nil {
		cp := make(Solution, len(b))
		for k, v := range b {
			cp[k] = v
		}
		return cp
	}
	cp := make(Solution, len(q.Vars))
	for _, v := range q.Vars {
		if t, ok := b[v]; ok {
			cp[v] = t
		}
	}
	return cp
}

func dedupe(sols []Solution, vars []string) []Solution {
	seen := map[string]bool{}
	out := sols[:0]
	for _, s := range sols {
		k := solutionKey(s, vars)
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

func solutionKey(s Solution, vars []string) string {
	if vars == nil {
		vars = make([]string, 0, len(s))
		for v := range s {
			vars = append(vars, v)
		}
		sort.Strings(vars)
	}
	var b strings.Builder
	for _, v := range vars {
		b.WriteString(v)
		b.WriteByte('=')
		b.WriteString(s[v].String())
		b.WriteByte(';')
	}
	return b.String()
}

// ---- lexer and parser -----------------------------------------------------

type token struct {
	kind string // "ident", "var", "iri", "literal", "int", punctuation
	text string
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '{' || c == '}' || c == '(' || c == ')' || c == '.' || c == ',' || c == '*':
			toks = append(toks, token{kind: string(c)})
			i++
		case c == '?':
			j := i + 1
			for j < len(src) && isWordByte(src[j]) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("sparql: bare '?' at offset %d", i)
			}
			toks = append(toks, token{kind: "var", text: src[i+1 : j]})
			i = j
		case c == '<':
			// '<' is both the IRI opener and the less-than operator. It is
			// an IRI only when a '>' follows with no intervening whitespace;
			// "<=", "< 10" and a dangling '<' are comparison operators.
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{kind: "op", text: "<="})
				i += 2
				break
			}
			j := strings.IndexByte(src[i:], '>')
			if j < 0 || strings.ContainsAny(src[i:i+j], " \t\n\r") {
				toks = append(toks, token{kind: "op", text: "<"})
				i++
				break
			}
			toks = append(toks, token{kind: "iri", text: src[i+1 : i+j]})
			i += j + 1
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("sparql: unterminated string")
			}
			toks = append(toks, token{kind: "literal", text: src[i+1 : j]})
			i = j + 1
		case c == '=' || c == '!' || c == '>':
			op := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{kind: "op", text: op})
			i++
		default:
			j := i
			for j < len(src) && (isWordByte(src[j]) || src[j] == ':' || src[j] == '-') {
				j++
			}
			if j == i {
				return nil, fmt.Errorf("sparql: unexpected character %q", c)
			}
			toks = append(toks, token{kind: "ident", text: src[i:j]})
			i = j
		}
	}
	return toks, nil
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token {
	if p.pos >= len(p.toks) {
		return token{kind: "eof"}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expectIdent(word string) error {
	t := p.next()
	if t.kind != "ident" || !strings.EqualFold(t.text, word) {
		return fmt.Errorf("sparql: expected %q, got %q", word, t.text)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if err := p.expectIdent("SELECT"); err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == "ident" && strings.EqualFold(t.text, "DISTINCT") {
		p.next()
		q.Distinct = true
	}
	if p.peek().kind == "*" {
		p.next()
	} else {
		for p.peek().kind == "var" {
			q.Vars = append(q.Vars, p.next().text)
		}
		if q.Vars == nil {
			return nil, fmt.Errorf("sparql: SELECT needs variables or *")
		}
	}
	if err := p.expectIdent("WHERE"); err != nil {
		return nil, err
	}
	if t := p.next(); t.kind != "{" {
		return nil, fmt.Errorf("sparql: expected '{'")
	}
	for {
		t := p.peek()
		switch {
		case t.kind == "}":
			p.next()
			goto done
		case t.kind == ".":
			p.next()
		case t.kind == "ident" && strings.EqualFold(t.text, "FILTER"):
			p.next()
			f, err := p.parseFilter()
			if err != nil {
				return nil, err
			}
			q.Filters = append(q.Filters, f)
		case t.kind == "eof":
			return nil, fmt.Errorf("sparql: unterminated WHERE block")
		default:
			pat, err := p.parsePattern()
			if err != nil {
				return nil, err
			}
			q.Patterns = append(q.Patterns, pat)
		}
	}
done:
	if t := p.peek(); t.kind == "ident" && strings.EqualFold(t.text, "LIMIT") {
		p.next()
		n := p.next()
		lim := 0
		if _, err := fmt.Sscanf(n.text, "%d", &lim); err != nil || lim < 0 {
			return nil, fmt.Errorf("sparql: bad LIMIT %q", n.text)
		}
		q.Limit = lim
	}
	if len(q.Patterns) == 0 {
		return nil, fmt.Errorf("sparql: empty basic graph pattern")
	}
	return q, nil
}

func (p *parser) parsePattern() (Pattern, error) {
	s, err := p.parseNode()
	if err != nil {
		return Pattern{}, err
	}
	pr, err := p.parseNode()
	if err != nil {
		return Pattern{}, err
	}
	o, err := p.parseNode()
	if err != nil {
		return Pattern{}, err
	}
	return Pattern{S: s, P: pr, O: o}, nil
}

func (p *parser) parseNode() (Node, error) {
	t := p.next()
	switch t.kind {
	case "var":
		return Node{Var: t.text}, nil
	case "iri":
		return Node{Term: rdf.NewIRI(t.text)}, nil
	case "literal":
		return Node{Term: rdf.NewLiteral(t.text)}, nil
	case "ident":
		if t.text == "a" {
			return Node{Term: rdf.RDFType}, nil
		}
		if isInteger(t.text) {
			return Node{Term: rdf.NewTypedLiteral(t.text, rdf.XSDInteger)}, nil
		}
		if iri, ok := rdf.ExpandQName(t.text); ok {
			return Node{Term: rdf.NewIRI(iri)}, nil
		}
		return Node{}, fmt.Errorf("sparql: cannot resolve %q", t.text)
	default:
		return Node{}, fmt.Errorf("sparql: expected node, got %q %q", t.kind, t.text)
	}
}

func (p *parser) parseFilter() (Filter, error) {
	if t := p.next(); t.kind != "(" {
		return Filter{}, fmt.Errorf("sparql: FILTER needs '('")
	}
	v := p.next()
	if v.kind != "var" {
		return Filter{}, fmt.Errorf("sparql: FILTER needs a variable")
	}
	op := p.next()
	if op.kind != "op" {
		return Filter{}, fmt.Errorf("sparql: FILTER needs a comparison, got %q", op.text)
	}
	val, err := p.parseNode()
	if err != nil {
		return Filter{}, err
	}
	if val.IsVar() {
		return Filter{}, fmt.Errorf("sparql: FILTER against a variable is unsupported")
	}
	if t := p.next(); t.kind != ")" {
		return Filter{}, fmt.Errorf("sparql: FILTER missing ')'")
	}
	return Filter{Var: v.text, Op: op.text, Value: val.Term}, nil
}

func isInteger(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
