package corpus

import (
	"crypto/sha256"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/crawler"
)

// drainHash streams the whole corpus and hashes every rendered page —
// the byte-identity fingerprint of a spec.
func drainHash(t *testing.T, spec Spec) (string, int, int) {
	t.Helper()
	g := New(spec)
	h := sha256.New()
	for {
		m, err := g.NextMatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("NextMatch: %v", err)
		}
		io.WriteString(h, crawler.RenderMatchPage(m))
	}
	return fmt.Sprintf("%x", h.Sum(nil)), g.Pages(), g.Docs()
}

func TestByteIdenticalForEqualSeeds(t *testing.T) {
	spec := Spec{TargetDocs: 2000, Seed: 7}
	h1, pages1, docs1 := drainHash(t, spec)
	h2, pages2, docs2 := drainHash(t, spec)
	if h1 != h2 || pages1 != pages2 || docs1 != docs2 {
		t.Fatalf("same spec, different corpus: %s/%d/%d vs %s/%d/%d",
			h1, pages1, docs1, h2, pages2, docs2)
	}
	if docs1 < 2000 {
		t.Fatalf("stopped before the target: %d docs", docs1)
	}
	h3, _, _ := drainHash(t, Spec{TargetDocs: 2000, Seed: 8})
	if h3 == h1 {
		t.Fatalf("different seeds produced identical corpora")
	}
}

func TestCoverageFixturesLeadTheStream(t *testing.T) {
	g := New(Spec{TargetDocs: 1000, Seed: 1})
	first, err := g.NextPage()
	if err != nil {
		t.Fatalf("NextPage: %v", err)
	}
	if first.Home != "Chelsea" || first.Away != "Barcelona" {
		t.Fatalf("page 0 is %s vs %s, want the Chelsea-Barcelona fixture", first.Home, first.Away)
	}
	second, err := g.NextPage()
	if err != nil {
		t.Fatalf("NextPage: %v", err)
	}
	if second.Home != "Real Madrid" || second.Away != "Manchester United" {
		t.Fatalf("page 1 is %s vs %s, want the Real Madrid-Manchester United fixture", second.Home, second.Away)
	}
	g2 := New(Spec{TargetDocs: 1000, Seed: 1, NoCoverage: true})
	p0, err := g2.NextPage()
	if err != nil {
		t.Fatalf("NextPage: %v", err)
	}
	if p0.Home == "Chelsea" && p0.Away == "Barcelona" {
		t.Fatalf("NoCoverage still emitted the forced fixture")
	}
}

func TestUniqueIDsAndGenerationOrder(t *testing.T) {
	g := New(Spec{TargetDocs: 3000, Seed: 3})
	seen := map[string]bool{}
	var prev string
	for {
		p, err := g.NextPage()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("NextPage: %v", err)
		}
		if seen[p.ID] {
			t.Fatalf("duplicate page ID %q", p.ID)
		}
		seen[p.ID] = true
		// The sequence prefix makes lexicographic order equal generation
		// order, so a -stream-out directory replays deterministically.
		if prev != "" && !(prev < p.ID) {
			t.Fatalf("IDs not lexicographically increasing: %q then %q", prev, p.ID)
		}
		prev = p.ID
	}
}

func TestZipfTeamSkew(t *testing.T) {
	g := New(Spec{TargetDocs: 60_000, Seed: 5, NoCoverage: true})
	counts := map[string]int{}
	for {
		m, err := g.NextMatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("NextMatch: %v", err)
		}
		counts[m.Home.Name]++
		counts[m.Away.Name]++
	}
	hot := counts[g.Universe().Teams[0].Name]
	if hot == 0 {
		t.Fatalf("rank-0 team never played")
	}
	// With ~500 matches over a Zipf(1.2) league the head team must
	// dominate: it should appear in well over a tenth of all slots while
	// most of the league sits in the tail.
	total := 2 * g.Pages()
	if hot*5 < total/2 {
		t.Fatalf("no Zipf head: hot team in %d of %d slots", hot, total)
	}
	if len(counts) < 20 {
		t.Fatalf("no Zipf tail: only %d distinct teams played", len(counts))
	}
}

func TestUniverseDeterministicAndBounded(t *testing.T) {
	u1 := NewUniverse(64, 9)
	u2 := NewUniverse(64, 9)
	if len(u1.Teams) != 64 || len(u2.Teams) != 64 {
		t.Fatalf("league sizes: %d, %d", len(u1.Teams), len(u2.Teams))
	}
	for i := range u1.Teams {
		if u1.Teams[i].Name != u2.Teams[i].Name {
			t.Fatalf("team %d differs: %q vs %q", i, u1.Teams[i].Name, u2.Teams[i].Name)
		}
		for j := range u1.Teams[i].Players {
			if u1.Teams[i].Players[j].Name != u2.Teams[i].Players[j].Name {
				t.Fatalf("player %d/%d differs", i, j)
			}
		}
	}
	// Per-squad surnames unique (the extractor resolves by surname).
	for _, tm := range u1.Teams {
		shorts := map[string]bool{}
		for _, p := range tm.Players {
			if shorts[p.Short] {
				t.Fatalf("%s: duplicate surname %q", tm.Name, p.Short)
			}
			shorts[p.Short] = true
		}
	}
	if n := len(NewUniverse(1<<20, 1).Teams); n != MaxTeams {
		t.Fatalf("oversized league not clamped: %d teams, want %d", n, MaxTeams)
	}
	if n := len(NewUniverse(0, 1).Teams); n != 8 {
		t.Fatalf("undersized league not clamped to the real squads: %d", n)
	}
}

// TestStreamingMemory pins the tentpole's core claim: peak generator
// memory is independent of corpus size. It streams a small and a 10x
// corpus, sampling live heap (post-GC) after the drain; a generator that
// retained pages would grow the live heap by ~100KB per page and trip
// the bound on the large run.
func TestStreamingMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("streams ~120k docs")
	}
	liveAfterDrain := func(docs int) uint64 {
		g := New(Spec{TargetDocs: docs, Seed: 11})
		for {
			if _, err := g.NextPage(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("NextPage: %v", err)
			}
		}
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		// Keep g live past the measurement so its league is counted.
		runtime.KeepAlive(g)
		return ms.HeapAlloc
	}
	small := liveAfterDrain(12_000)   // ~100 pages
	large := liveAfterDrain(120_000)  // ~1000 pages
	// Identical league, identical in-flight state: the live heap after a
	// 10x stream must stay within a fixed budget of the small run, not
	// scale with it. 16MB absorbs GC noise; retained pages would add
	// ~90MB (~900 pages x ~100KB).
	const slack = 16 << 20
	if large > small+slack {
		t.Fatalf("live heap grew with corpus size: %d bytes after 12k docs, %d after 120k", small, large)
	}
}

func TestParseSizeAndLabel(t *testing.T) {
	cases := []struct {
		in   string
		want int
		err  bool
	}{
		{"10k", 10_000, false},
		{"100K", 100_000, false},
		{"1M", 1_000_000, false},
		{"1m", 1_000_000, false},
		{"2500", 2500, false},
		{"250k", 250_000, false},
		{"", 0, true},
		{"k", 0, true},
		{"-5k", 0, true},
		{"2.5M", 0, true},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d, err=%v", c.in, got, err, c.want, c.err)
		}
	}
	for docs, want := range map[int]string{10_000: "10k", 100_000: "100k", 1_000_000: "1M", 2500: "2500"} {
		if got := SizeLabel(docs); got != want {
			t.Errorf("SizeLabel(%d) = %q, want %q", docs, got, want)
		}
	}
}
