// Package corpus is the scale-truth half of the benchmarking story: a
// deterministic, seeded, *streaming* synthetic-corpus generator that
// scales the paper's 10-match crawl to 10k/100k/1M indexed documents
// without ever holding the corpus in memory. Pages come out one at a
// time through NextPage — the sharded build path (shard.BuildStream),
// cmd/socgen's -stream-out, and the load harness (internal/loadgen) all
// consume the same stream — and identical Specs yield byte-identical
// corpora, so every BENCH_6 tier is reproducible.
//
// Realism knobs follow the web-scale corpora the related systems index:
// team (and with them player) mentions are Zipf-distributed over a
// synthetic league seeded with the eight real squads, so the hot-head /
// long-tail shape of real query and document traffic survives scaling;
// every narration is rendered by the same ontology-aware templates the
// extractor recognizes, so FULL_INF inference levels stay meaningful at
// any size.
package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/soccer"
)

// Universe is the synthetic league a generated corpus draws from: the
// eight real squads (keeping the paper-coverage queries answerable)
// plus deterministically synthesized teams up to the requested league
// size. Its memory footprint depends only on the team count, never on
// how many matches are streamed out of it.
type Universe struct {
	// Teams lists the league, real squads first. Rank order is popularity
	// order: the Zipf team draw treats index 0 as the hottest team.
	Teams []*soccer.Team

	byName map[string]*soccer.Team
}

// MaxTeams caps the league size at the number of distinct synthetic
// names the city x suffix pools can mint plus the real squads.
var MaxTeams = len(cityNames)*len(clubSuffixes) + 8

// NewUniverse builds a league of n teams (clamped to [8, MaxTeams])
// deterministically from the seed. The same (n, seed) always yields the
// identical league, independent of how it is later sampled.
func NewUniverse(n int, seed int64) *Universe {
	real := soccer.BuildTeams()
	if n < len(real) {
		n = len(real)
	}
	if n > MaxTeams {
		n = MaxTeams
	}
	u := &Universe{Teams: make([]*soccer.Team, 0, n), byName: make(map[string]*soccer.Team, n)}
	u.Teams = append(u.Teams, real...)

	rng := rand.New(rand.NewSource(seed))
	// Enumerate city x suffix combinations in a seeded shuffle: unique by
	// construction, so no rejection loop whose iteration count could
	// depend on map order or prior draws.
	combos := rng.Perm(len(cityNames) * len(clubSuffixes))
	positions := soccer.LineupPositions()
	for _, c := range combos {
		if len(u.Teams) >= n {
			break
		}
		city := cityNames[c/len(clubSuffixes)]
		name := city + " " + clubSuffixes[c%len(clubSuffixes)]
		t := &soccer.Team{
			Name:    name,
			City:    city,
			Coach:   synthName(rng, nil),
			Stadium: city + " " + stadiumSuffixes[rng.Intn(len(stadiumSuffixes))],
		}
		// Short names must be unique within a squad: narration text refers
		// to players by surname and the extractor resolves them against the
		// lineup, so a duplicate surname would alias two players.
		used := map[string]bool{}
		for j, pos := range positions {
			full := synthName(rng, used)
			t.Players = append(t.Players, &soccer.Player{
				Name:     full,
				Short:    surname(full),
				Position: pos,
				Shirt:    j + 1,
			})
		}
		u.Teams = append(u.Teams, t)
	}
	for _, t := range u.Teams {
		u.byName[t.Name] = t
	}
	return u
}

// Team returns the team with the given name, or nil.
func (u *Universe) Team(name string) *soccer.Team { return u.byName[name] }

// ByName exposes the name lookup map soccer.GenerateCoverageMatch needs.
func (u *Universe) ByName() map[string]*soccer.Team { return u.byName }

// synthName mints a "First Last" name whose surname is not yet in used
// (nil used skips the uniqueness constraint). The pools are sized so 11
// draws out of len(surnames) surnames terminate quickly.
func synthName(rng *rand.Rand, used map[string]bool) string {
	for {
		full := firstNames[rng.Intn(len(firstNames))] + " " + surnames[rng.Intn(len(surnames))]
		s := surname(full)
		if used == nil {
			return full
		}
		if !used[s] {
			used[s] = true
			return full
		}
	}
}

// surname is the narration short form: the last space-separated part.
func surname(full string) string {
	for i := len(full) - 1; i >= 0; i-- {
		if full[i] == ' ' {
			return full[i+1:]
		}
	}
	return full
}

// The synthetic vocabulary pools. Sizes matter more than the entries:
// with ~56 cities, 12 club suffixes, 64 first names and 160 surnames the
// default 256-team league carries ~2.8k distinct player surnames — enough
// vocabulary for the Zipf head/tail split to show up in postings-list
// lengths, the property the load harness stresses.
var cityNames = []string{
	"Valeria", "Porto Verde", "Santa Clara", "Eastbrook", "Northfield",
	"Westhaven", "Redcliffe", "Blackpool", "Silverton", "Ironbridge",
	"Greenville", "Oakham", "Ashford", "Millbrook", "Stonehaven",
	"Riverton", "Lakewood", "Hillcrest", "Fairview", "Maplewood",
	"Brookside", "Clearwater", "Springfield", "Harborview", "Sunnydale",
	"Winterfell", "Summerton", "Autumnvale", "Meadowbrook", "Thornbury",
	"Eaglecrest", "Falconridge", "Lionsgate", "Wolfburg", "Bearfield",
	"Foxborough", "Deerhurst", "Swanmere", "Ravenswood", "Hawkesbury",
	"Castellon Vieja", "Monteverde", "Alta Vista", "Bellamar", "Costa Dorada",
	"Nova Esperanza", "San Rafael", "Villa Real", "Puerto Azul", "Los Alamos",
	"Kirkwall", "Dunmore", "Aberfeld", "Glenrock", "Strathmore", "Invergary",
}
var clubSuffixes = []string{
	"United", "City", "Athletic", "Rovers", "Wanderers", "Sporting",
	"Dynamo", "Olympic", "Albion", "Rangers", "Victoria", "Corinthians",
}
var stadiumSuffixes = []string{"Stadium", "Arena", "Park", "Ground"}
var firstNames = []string{
	"Adrian", "Alejandro", "Andre", "Antonio", "Arjen", "Bastian", "Bruno",
	"Carlos", "Cesar", "Claudio", "Daniele", "David", "Diego", "Dimitri",
	"Eduardo", "Emil", "Enzo", "Fabian", "Felipe", "Fernando", "Filip",
	"Francesco", "Gabriel", "Georgi", "Gianluca", "Gonzalo", "Henrik",
	"Hugo", "Igor", "Ivan", "Jakob", "Jan", "Javier", "Joao", "Jonas",
	"Jorge", "Jose", "Juan", "Julian", "Karim", "Kasper", "Kevin", "Luca",
	"Lucas", "Luis", "Marco", "Marcus", "Mario", "Martin", "Mateo",
	"Matteo", "Mehdi", "Miguel", "Mikael", "Milan", "Nicolas", "Oliver",
	"Pablo", "Paulo", "Pedro", "Rafael", "Ricardo", "Roberto", "Sergei",
}
var surnames = []string{
	"Abramov", "Acosta", "Aguilar", "Albrecht", "Almeida", "Alves",
	"Andersen", "Andrade", "Antonelli", "Araujo", "Arias", "Baptista",
	"Barbieri", "Barros", "Becker", "Bellini", "Benitez", "Bergkamp",
	"Bianchi", "Bjornsson", "Blanco", "Bogdanov", "Bonucci", "Borges",
	"Bravo", "Brandt", "Cabrera", "Caldeira", "Campos", "Cardoso",
	"Carvalho", "Castillo", "Cavani", "Cermak", "Chavez", "Colombo",
	"Conti", "Cordova", "Correia", "Costa", "Cruz", "Da Silva", "Delgado",
	"Diallo", "Dias", "Dominguez", "Donati", "Dragomir", "Duarte",
	"Dubois", "Duran", "Eriksen", "Escobar", "Esposito", "Farias",
	"Fernandez", "Ferrari", "Ferreira", "Figueroa", "Fischer", "Flores",
	"Fontaine", "Fonseca", "Freitas", "Fuentes", "Gallo", "Garcia",
	"Giordano", "Gomes", "Gonzalez", "Graziani", "Greco", "Guerrero",
	"Gutierrez", "Haraldsson", "Hernandez", "Herrera", "Hoffmann",
	"Ibanez", "Ibragimov", "Iversen", "Jankovic", "Jensen", "Jimenez",
	"Johansson", "Jorgensen", "Kader", "Kalinin", "Karlsson", "Keller",
	"Kovac", "Kowalski", "Kral", "Krause", "Kuznetsov", "Laurent",
	"Lehmann", "Lindgren", "Lombardi", "Lopes", "Lopez", "Lorenzo",
	"Macedo", "Machado", "Magnusson", "Maldini", "Marchetti", "Marino",
	"Marques", "Martinez", "Martins", "Medina", "Mendes", "Mendoza",
	"Mercado", "Meyer", "Miranda", "Molina", "Monteiro", "Morales",
	"Moreira", "Moreno", "Moretti", "Muller", "Navarro", "Nielsen",
	"Nogueira", "Novak", "Nunez", "Oliveira", "Orlov", "Ortega", "Ortiz",
	"Pavlovic", "Pereira", "Perez", "Petit", "Petrov", "Pinto", "Popov",
	"Quintero", "Ramirez", "Ramos", "Rasmussen", "Reyes", "Ribeiro",
	"Ricci", "Rinaldi", "Rios", "Rivera", "Rocha", "Rodrigues",
	"Rodriguez", "Rojas", "Romano", "Romero", "Rossi", "Ruiz", "Salinas",
	"Sanchez", "Santana", "Santos", "Schmidt", "Schneider", "Silva",
	"Simonsen", "Soares", "Sokolov", "Sorensen", "Soto", "Sousa",
	"Suarez", "Svensson", "Tavares", "Teixeira", "Torres", "Uribe",
	"Valdez", "Varga", "Vargas", "Vasquez", "Vega", "Velasquez",
	"Vieira", "Villanueva", "Vogel", "Volkov", "Wagner", "Weber",
	"Zamora", "Zimmermann",
}

// synthetic vocab sanity: the pools above must stay big enough that the
// per-squad unique-surname draw terminates; compile-time-ish guard.
var _ = func() struct{} {
	if len(surnames) < 32 {
		panic(fmt.Sprintf("corpus: surname pool too small: %d", len(surnames)))
	}
	return struct{}{}
}()
