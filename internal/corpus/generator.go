package corpus

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/crawler"
	"repro/internal/soccer"
)

// Spec configures one streamed corpus. The zero value of every field
// selects a sane default, so Spec{TargetDocs: 100_000} is a complete
// configuration. Two generators constructed from equal Specs emit
// byte-identical page streams.
type Spec struct {
	// TargetDocs is the approximate indexed-document target; generation
	// stops at the first match that reaches it. A match page carries ~118
	// narrations and indexes to ~119 event documents at FULL_INF, so the
	// narration count is the accounting proxy (within ~1% of the real
	// per-level document count). <= 0 means 10_000.
	TargetDocs int
	// Seed drives every random draw. Equal seeds (with equal other
	// fields) yield byte-identical corpora.
	Seed int64
	// Teams is the synthetic league size (clamped to [8, MaxTeams]);
	// 0 means 256. League size is a realism knob, not a scale knob —
	// generator memory depends on it, never on TargetDocs.
	Teams int
	// ZipfS is the team-popularity exponent (> 1; 0 means 1.2). Hot
	// teams play — and get mentioned — Zipf-often, reproducing the
	// head/tail shape of real match-page corpora.
	ZipfS float64
	// NoCoverage disables the two forced paper-coverage fixtures that
	// otherwise occupy the first two matches (soccer.GenerateCoverageMatch),
	// which keep the Table 3 evaluation queries answerable at any scale.
	NoCoverage bool
}

// withDefaults resolves the zero values.
func (s Spec) withDefaults() Spec {
	if s.TargetDocs <= 0 {
		s.TargetDocs = 10_000
	}
	if s.Teams == 0 {
		s.Teams = 256
	}
	if s.ZipfS <= 1 {
		// rand.NewZipf needs s > 1; treat anything else (including the
		// zero value) as "default skew".
		s.ZipfS = 1.2
	}
	return s
}

// Generator streams one synthetic corpus match by match. It retains no
// emitted match: peak memory is the league plus the single match in
// flight, independent of TargetDocs (pinned by TestStreamingMemory).
// Not safe for concurrent use; one goroutine owns the stream.
type Generator struct {
	spec  Spec
	u     *Universe
	rng   *rand.Rand
	zipf  *rand.Zipf
	pages int
	docs  int
	day   int
}

// New constructs a generator over spec. Construction builds only the
// league; no match is generated until NextMatch/NextPage.
func New(spec Spec) *Generator {
	spec = spec.withDefaults()
	g := &Generator{spec: spec, u: NewUniverse(spec.Teams, spec.Seed)}
	// A distinct seed stream for match simulation keeps the league
	// (NewUniverse consumes its own rng) and the schedule independent.
	g.rng = rand.New(rand.NewSource(spec.Seed ^ 0x5DEECE66D))
	g.zipf = rand.NewZipf(g.rng, spec.ZipfS, 1, uint64(len(g.u.Teams)-1))
	return g
}

// Universe exposes the league the stream draws from — the vocabulary
// source for query-mix generation (internal/loadgen).
func (g *Generator) Universe() *Universe { return g.u }

// Pages returns how many match pages have been emitted so far.
func (g *Generator) Pages() int { return g.pages }

// Docs returns the running indexed-document proxy count (narrations).
func (g *Generator) Docs() int { return g.docs }

// scheduleBase anchors the fixture calendar; dates advance 1-3 days per
// match, so every match carries a distinct date and match IDs stay
// unique even when the Zipf head repeats a pairing.
var scheduleBase = time.Date(2009, time.March, 1, 0, 0, 0, 0, time.UTC)

// NextMatch generates the next match of the stream, or io.EOF once the
// document target is reached. The caller owns the returned match; the
// generator keeps no reference to it.
func (g *Generator) NextMatch() (*soccer.Match, error) {
	if g.docs >= g.spec.TargetDocs {
		return nil, io.EOF
	}
	g.day += g.rng.Intn(3) + 1
	date := scheduleBase.AddDate(0, 0, g.day).Format("2006-01-02")

	var m *soccer.Match
	if !g.spec.NoCoverage && g.pages < 2 {
		m, _ = g.coverageMatch(date)
	}
	if m == nil {
		home := g.u.Teams[g.zipf.Uint64()]
		away := home
		for away == home {
			away = g.u.Teams[g.zipf.Uint64()]
		}
		m = soccer.GenerateMatch(g.rng, home, away, date)
	}
	// Prefix the ID with the stream sequence number: IDs become unique by
	// construction and a -stream-out directory read back sorted by name
	// (cli.ReadPagesDir) replays the exact generation order, keeping
	// docIDs — and with them ranking tie-breaks — deterministic.
	m.ID = fmt.Sprintf("m%08d_%s", g.pages, m.ID)

	g.pages++
	g.docs += len(m.Narrations)
	return m, nil
}

// coverageMatch delegates to the forced paper fixtures.
func (g *Generator) coverageMatch(date string) (*soccer.Match, bool) {
	return soccer.GenerateCoverageMatch(g.rng, g.u.ByName(), g.pages, date)
}

// NextPage is NextMatch rendered and re-parsed into the crawled page
// shape the indexing pipeline consumes — the same lossless round trip
// crawler.PagesFromCorpus performs, one page at a time. It implements
// shard.PageSource, so a Generator plugs directly into the streaming
// sharded build.
func (g *Generator) NextPage() (*crawler.MatchPage, error) {
	m, err := g.NextMatch()
	if err != nil {
		return nil, err
	}
	page, perr := crawler.ParseMatchPage(crawler.RenderMatchPage(m))
	if perr != nil {
		// Render and Parse are inverse by construction; failing here is a
		// bug in the generator's vocabulary (e.g. a name the escaper and
		// parser disagree on), worth surfacing loudly.
		return nil, fmt.Errorf("corpus: page %d round trip: %w", g.pages-1, perr)
	}
	return page, nil
}

// ParseSize converts a human corpus size — "10k", "100k", "1M", "2500",
// "2.5M" is NOT accepted (keep tiers integral) — into a document count.
func ParseSize(s string) (int, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("corpus: empty size")
	}
	mult := 1
	switch t[len(t)-1] {
	case 'k', 'K':
		mult = 1_000
		t = t[:len(t)-1]
	case 'm', 'M':
		mult = 1_000_000
		t = t[:len(t)-1]
	}
	n, err := strconv.Atoi(t)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("corpus: bad size %q (want e.g. 10k, 100k, 1M)", s)
	}
	return n * mult, nil
}

// SizeLabel renders a document count the way tier tables label it:
// exact multiples of a million or a thousand compress to 1M / 100k.
func SizeLabel(docs int) string {
	switch {
	case docs >= 1_000_000 && docs%1_000_000 == 0:
		return strconv.Itoa(docs/1_000_000) + "M"
	case docs >= 1_000 && docs%1_000 == 0:
		return strconv.Itoa(docs/1_000) + "k"
	default:
		return strconv.Itoa(docs)
	}
}
