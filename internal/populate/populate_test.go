package populate

import (
	"testing"

	"repro/internal/crawler"
	"repro/internal/ie"
	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/rules"
	"repro/internal/soccer"
)

func populated(t testing.TB, seed int64) (*Populator, *PopulatedMatch, *soccer.Match) {
	t.Helper()
	c := soccer.Generate(soccer.Config{Matches: 1, Seed: seed, NarrationsPerMatch: 60})
	m := c.Matches[0]
	page, err := crawler.ParseMatchPage(crawler.RenderMatchPage(m))
	if err != nil {
		t.Fatal(err)
	}
	events := ie.Extractor{}.ExtractMatch(page)
	p := &Populator{Ontology: soccer.BuildOntology()}
	return p, p.Populate(page, events), m
}

func TestPopulateMatchStructure(t *testing.T) {
	p, pm, m := populated(t, 5)
	o := p.Ontology
	g := pm.Model.Graph

	if !g.HasSPO(pm.MatchIRI, rdf.RDFType, o.IRI("Match")) {
		t.Error("match individual missing")
	}
	home := g.FirstObject(pm.MatchIRI, o.IRI("homeTeam"))
	away := g.FirstObject(pm.MatchIRI, o.IRI("awayTeam"))
	if home.IsZero() || away.IsZero() || home == away {
		t.Errorf("teams: home=%v away=%v", home, away)
	}
	if hs, _ := g.FirstObject(pm.MatchIRI, o.IRI("homeScore")).Int(); hs != m.HomeScore {
		t.Errorf("homeScore = %d, want %d", hs, m.HomeScore)
	}
	// Each team must have 11 lineup players and a goalkeeper.
	for _, team := range []rdf.Term{home, away} {
		players := g.Objects(team, o.IRI("hasPlayer"))
		if len(players) != 11 {
			t.Errorf("team %v has %d players", team, len(players))
		}
		if g.FirstObject(team, o.IRI("hasGoalkeeper")).IsZero() {
			t.Errorf("team %v has no goalkeeper", team)
		}
	}
}

// TestPopulationFig4 mirrors the paper's Fig. 4: the narration "Keita
// commits a foul after challenging Belletti" style input must become a Foul
// individual with foulingPlayer and fouledPlayer filled.
func TestPopulationFig4(t *testing.T) {
	p, pm, m := populated(t, 5)
	o := p.Ontology
	g := pm.Model.Graph

	fouls := g.Subjects(rdf.RDFType, o.IRI("Foul"))
	if len(fouls) == 0 {
		t.Fatal("no Foul individuals populated")
	}
	withBoth := 0
	for _, f := range fouls {
		s := g.FirstObject(f, o.IRI("foulingPlayer"))
		ob := g.FirstObject(f, o.IRI("fouledPlayer"))
		if !s.IsZero() && !ob.IsZero() {
			withBoth++
		}
	}
	if withBoth == 0 {
		t.Error("no foul has both fouling and fouled players")
	}
	_ = m
}

func TestPlayersGetPositionClasses(t *testing.T) {
	p, pm, _ := populated(t, 5)
	o := p.Ontology
	g := pm.Model.Graph
	// The lineups guarantee one of each position per team.
	for _, cls := range []string{"GoalkeeperPlayer", "LeftBack", "CenterBack", "CentralMidfielder", "CenterForward"} {
		if len(g.Subjects(rdf.RDFType, o.IRI(cls))) == 0 {
			t.Errorf("no individual typed %s", cls)
		}
	}
}

func TestGoalDeduplication(t *testing.T) {
	p, pm, m := populated(t, 5)
	o := p.Ontology
	g := pm.Model.Graph
	// Every basic-info goal also appears in a narration; dedup must keep
	// exactly one Goal-or-subtype individual per scored goal.
	goalInds := map[rdf.Term]bool{}
	for _, cls := range []string{"Goal", "HeaderGoal", "PenaltyGoal", "FreeKickGoal", "OwnGoal"} {
		for _, ind := range g.Subjects(rdf.RDFType, o.IRI(cls)) {
			goalInds[ind] = true
		}
	}
	if len(goalInds) != len(m.Goals) {
		t.Errorf("%d goal individuals for %d goals", len(goalInds), len(m.Goals))
	}
	// Deduped goals keep their narration.
	for ind := range goalInds {
		if g.FirstObject(ind, o.IRI("narration")).IsZero() {
			t.Errorf("goal %v lost its narration", ind)
		}
	}
	_ = pm
}

func TestSubstitutionDeduplication(t *testing.T) {
	p, pm, m := populated(t, 5)
	o := p.Ontology
	subs := pm.Model.Graph.Subjects(rdf.RDFType, o.IRI("Substitution"))
	if len(subs) != len(m.Substitutions) {
		t.Errorf("%d substitution individuals for %d subs", len(subs), len(m.Substitutions))
	}
}

func TestUnknownEventsKept(t *testing.T) {
	p, pm, m := populated(t, 5)
	o := p.Ontology
	unknowns := pm.Model.Graph.Subjects(rdf.RDFType, o.IRI("UnknownEvent"))
	if len(unknowns) == 0 {
		t.Fatal("no UnknownEvent individuals (color narrations dropped)")
	}
	// Unknown events must retain their narration for full-text recall.
	for _, u := range unknowns {
		if pm.Model.Graph.FirstObject(u, o.IRI("narration")).IsZero() {
			t.Errorf("unknown event %v has no narration", u)
		}
	}
	narrCount := len(m.Narrations)
	if len(pm.Events) > narrCount+len(m.Goals)+len(m.Substitutions) {
		t.Errorf("implausible event count %d", len(pm.Events))
	}
}

func TestEventRecordsCoverEveryNarration(t *testing.T) {
	_, pm, m := populated(t, 11)
	withNarr := 0
	for _, r := range pm.Events {
		if r.Narration != "" {
			withNarr++
		}
	}
	if withNarr != len(m.Narrations) {
		t.Errorf("%d records carry narrations, corpus has %d", withNarr, len(m.Narrations))
	}
}

func TestPopulatedModelConsistent(t *testing.T) {
	p, pm, _ := populated(t, 5)
	r := reasoner.New(p.Ontology)
	inf := r.Materialize(pm.Model)
	if v := r.CheckConsistency(inf); len(v) != 0 {
		for _, x := range v[:min(5, len(v))] {
			t.Errorf("violation: %s", x)
		}
	}
}

func TestFullPipelineInferenceSmoke(t *testing.T) {
	// Populate -> materialize -> rules -> materialize: the assist rule
	// needs the type closure first (populated passes are LongPass etc. and
	// the rule matches pre:Pass), and must fire at least once across a few
	// seeds (65% of open-play goals have a same-minute pass to the scorer).
	assists := 0
	for seed := int64(1); seed <= 5; seed++ {
		p, pm, _ := populated(t, seed)
		r := reasoner.New(p.Ontology)
		inf := r.Materialize(pm.Model)
		rules.NewEngine(soccer.Rules()).Run(inf.Graph)
		inf = r.Materialize(inf)
		assists += len(inf.Graph.Subjects(rdf.RDFType, p.Ontology.IRI("Assist")))
	}
	if assists == 0 {
		t.Error("assist rule never fired over 5 matches")
	}
}

func TestIRISafe(t *testing.T) {
	cases := map[string]string{
		"Samuel Eto'o":     "Samuel_Etoo",
		"Van der Sar":      "Van_der_Sar",
		"Real Madrid":      "Real_Madrid",
		"Güiza":            "Giza",
		"Chelsea_Barca_09": "Chelsea_Barca_09",
	}
	for in, want := range cases {
		if got := iriSafe(in); got != want {
			t.Errorf("iriSafe(%q) = %q, want %q", in, got, want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
