// Package populate implements ontology population (Section 3.4): it turns
// the crawled basic information and the extracted events of one match into
// an OWL model of individuals, one independent model per game — the
// paper's unit of inference that keeps reasoning cost flat in corpus size.
//
// Role filling follows the paper's generic-property design: every event
// class has subjectPlayer/objectPlayer sub-properties (scorerPlayer,
// fouledPlayer, ...); the populator asserts the most specific property the
// ontology defines for the event kind and falls back to the generic one,
// so an extractor that only finds the subject still produces a usable
// individual.
package populate

import (
	"fmt"
	"strings"

	"repro/internal/crawler"
	"repro/internal/ie"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/soccer"
)

// EventRecord links an event individual to its source data for the
// indexing stage.
type EventRecord struct {
	// Individual is the event's IRI in the model.
	Individual rdf.Term
	// Kind is the asserted event class.
	Kind soccer.EventKind
	// Minute is the event minute.
	Minute int
	// Narration is the source text ("" for basic-info-only events).
	Narration string
	// NarrationIdx indexes the page's narration list, -1 when the record
	// came from basic information with no matching narration.
	NarrationIdx int
}

// PopulatedMatch is the result of populating one match.
type PopulatedMatch struct {
	// Model is the per-match ABox (pre-inference).
	Model *owl.Model
	// MatchIRI is the match individual.
	MatchIRI rdf.Term
	// Page is the source crawl page.
	Page *crawler.MatchPage
	// Events lists every event individual, basic-info and extracted alike.
	Events []EventRecord
}

// rolePair names the specific subject/object sub-properties for a kind.
type rolePair struct {
	subj string // sub-property of subjectPlayer ("" = use generic)
	obj  string // sub-property of objectPlayer ("" = use generic)
}

var roleProperties = map[soccer.EventKind]rolePair{
	soccer.KindGoal:          {subj: "scorerPlayer"},
	soccer.KindHeaderGoal:    {subj: "scorerPlayer"},
	soccer.KindPenaltyGoal:   {subj: "scorerPlayer"},
	soccer.KindFreeKickGoal:  {subj: "scorerPlayer"},
	soccer.KindOwnGoal:       {subj: "scorerPlayer"},
	soccer.KindPass:          {subj: "passingPlayer", obj: "passReceiver"},
	soccer.KindLongPass:      {subj: "passingPlayer", obj: "passReceiver"},
	soccer.KindShortPass:     {subj: "passingPlayer", obj: "passReceiver"},
	soccer.KindCrossPass:     {subj: "passingPlayer", obj: "passReceiver"},
	soccer.KindThroughPass:   {subj: "passingPlayer", obj: "passReceiver"},
	soccer.KindShoot:         {subj: "shootingPlayer"},
	soccer.KindShotOnTarget:  {subj: "shootingPlayer"},
	soccer.KindShotOffTarget: {subj: "shootingPlayer"},
	soccer.KindHeaderShot:    {subj: "shootingPlayer"},
	soccer.KindSave:          {subj: "savingPlayer", obj: "savedFromPlayer"},
	soccer.KindPenaltySave:   {subj: "savingPlayer", obj: "savedFromPlayer"},
	soccer.KindTackle:        {subj: "tacklingPlayer", obj: "tackledPlayer"},
	soccer.KindInterception:  {subj: "interceptingPlayer"},
	soccer.KindClearance:     {subj: "clearingPlayer"},
	soccer.KindDribble:       {subj: "dribblingPlayer", obj: "dribbledPastPlayer"},
	soccer.KindFoul:          {subj: "foulingPlayer", obj: "fouledPlayer"},
	soccer.KindHandBall:      {subj: "foulingPlayer"},
	soccer.KindYellowCard:    {subj: "punishedPlayer"},
	soccer.KindSecondYellow:  {subj: "punishedPlayer"},
	soccer.KindRedCard:       {subj: "punishedPlayer"},
	soccer.KindOffside:       {subj: "offsidePlayer"},
	soccer.KindMissedGoal:    {subj: "missingPlayer"},
	soccer.KindMissedPenalty: {subj: "missingPlayer"},
	soccer.KindInjury:        {obj: "injuredPlayer"},
	soccer.KindSubstitution:  {subj: "substitutedPlayer", obj: "substitutePlayer"},
	soccer.KindCorner:        {subj: "cornerTaker"},
	soccer.KindFreeKick:      {subj: "freeKickTaker"},
	soccer.KindPenaltyKick:   {subj: "penaltyTaker"},
	soccer.KindThrowIn:       {subj: "throwInTaker"},
}

// Populator builds per-match models over a shared ontology.
type Populator struct {
	Ontology *owl.Ontology
}

// Populate builds the model for one match from its crawl page and the
// extracted events. Extracted goals and substitutions that duplicate
// basic-information entries enrich the existing individual (adding the
// specific subtype and narration) instead of creating a second one.
func (p *Populator) Populate(page *crawler.MatchPage, events []ie.Event) *PopulatedMatch {
	m := owl.NewModel(p.Ontology)
	m.IDPrefix = iriSafe(page.ID) + "_"
	pm := &PopulatedMatch{Model: m, Page: page}

	matchIRI := m.NamedIndividual(iriSafe(page.ID), "Match")
	pm.MatchIRI = matchIRI
	m.SetString(matchIRI, "hasDate", page.Date)
	m.SetInt(matchIRI, "homeScore", page.HomeScore)
	m.SetInt(matchIRI, "awayScore", page.AwayScore)

	stadium := m.NamedIndividual(iriSafe(page.Stadium), "Stadium")
	m.Set(matchIRI, "playedAtStadium", stadium)
	referee := m.NamedIndividual(iriSafe(page.Referee), "Referee")
	m.SetString(referee, "hasName", page.Referee)
	m.Set(matchIRI, "hasReferee", referee)

	teamIRIs := map[string]rdf.Term{}
	playerIRIs := map[string]rdf.Term{} // short name -> IRI
	for i, teamName := range []string{page.Home, page.Away} {
		tIRI := m.NamedIndividual(iriSafe(teamName), "Team")
		teamIRIs[teamName] = tIRI
		m.SetString(tIRI, "hasName", teamName)
		if i == 0 {
			m.Set(matchIRI, "homeTeam", tIRI)
		} else {
			m.Set(matchIRI, "awayTeam", tIRI)
		}
		if coach := page.Coaches[teamName]; coach != "" {
			cIRI := m.NamedIndividual(iriSafe(coach), "Coach")
			m.SetString(cIRI, "hasName", coach)
			m.Set(tIRI, "hasCoach", cIRI)
		}
		for _, pl := range page.Lineups[teamName] {
			plIRI := m.NamedIndividual(iriSafe(pl.Name), soccer.PositionClass(pl.Position))
			playerIRIs[pl.Short] = plIRI
			m.SetString(plIRI, "hasName", pl.Name)
			m.SetInt(plIRI, "shirtNumber", pl.Shirt)
			m.Set(plIRI, "playsFor", tIRI)
			m.Set(tIRI, "hasPlayer", plIRI)
			if pl.Position == "GK" {
				m.Set(tIRI, "hasGoalkeeper", plIRI)
			}
		}
	}
	// Bench players named only in substitutions.
	for _, s := range page.Subs {
		if _, ok := playerIRIs[s.On]; ok {
			continue
		}
		plIRI := m.NamedIndividual(iriSafe(s.On), "Player")
		playerIRIs[s.On] = plIRI
		m.SetString(plIRI, "hasName", s.On)
		m.Set(plIRI, "playsFor", teamIRIs[s.Team])
	}

	// Basic-information goals, keyed for dedup against extracted goals.
	goalByKey := map[string]rdf.Term{}
	for _, g := range page.Goals {
		cls := "Goal"
		if g.OwnGoal {
			cls = "OwnGoal"
		}
		ev := m.NewIndividual(cls)
		m.SetInt(ev, "inMinute", g.Minute)
		m.Set(ev, "inMatch", matchIRI)
		m.SetString(ev, "extractedBy", "basic")
		if pl, ok := playerIRIs[g.Scorer]; ok {
			m.Set(ev, "scorerPlayer", pl)
		}
		// GoalInfo.Team is the credited team — for an own goal, the
		// opponent of the scorer, which is exactly what scoringTeam means.
		m.Set(ev, "scoringTeam", teamIRIs[g.Team])
		goalByKey[goalKey(g.Minute, g.Scorer)] = ev
		kind := soccer.KindGoal
		if g.OwnGoal {
			kind = soccer.KindOwnGoal
		}
		pm.Events = append(pm.Events, EventRecord{Individual: ev, Kind: kind, Minute: g.Minute, NarrationIdx: -1})
	}
	// Basic-information substitutions.
	subByKey := map[string]rdf.Term{}
	for _, s := range page.Subs {
		ev := m.NewIndividual("Substitution")
		m.SetInt(ev, "inMinute", s.Minute)
		m.Set(ev, "inMatch", matchIRI)
		m.SetString(ev, "extractedBy", "basic")
		if pl, ok := playerIRIs[s.Off]; ok {
			m.Set(ev, "substitutedPlayer", pl)
		}
		if pl, ok := playerIRIs[s.On]; ok {
			m.Set(ev, "substitutePlayer", pl)
		}
		m.Set(ev, "subjectTeam", teamIRIs[s.Team])
		subByKey[goalKey(s.Minute, s.Off)] = ev
		pm.Events = append(pm.Events, EventRecord{Individual: ev, Kind: soccer.KindSubstitution, Minute: s.Minute, NarrationIdx: -1})
	}

	// Extracted events.
	for _, ev := range events {
		p.populateEvent(pm, m, matchIRI, teamIRIs, playerIRIs, goalByKey, subByKey, ev)
	}
	return pm
}

func (p *Populator) populateEvent(pm *PopulatedMatch, m *owl.Model, matchIRI rdf.Term,
	teamIRIs, playerIRIs map[string]rdf.Term, goalByKey, subByKey map[string]rdf.Term, ev ie.Event) {

	// Deduplicate against basic information: enrich instead of duplicating.
	if isGoalKind(ev.Kind) && ev.HasSubject() {
		if existing, ok := goalByKey[goalKey(ev.Minute, ev.Subject.Name)]; ok {
			// Add the more specific subtype (HeaderGoal etc.) and narration.
			m.Graph.AddSPO(existing, rdf.RDFType, p.Ontology.IRI(string(ev.Kind)))
			m.SetString(existing, "narration", ev.Narration)
			p.attachRecordNarration(pm, existing, ev)
			return
		}
	}
	if ev.Kind == soccer.KindSubstitution && ev.HasSubject() {
		if existing, ok := subByKey[goalKey(ev.Minute, ev.Subject.Name)]; ok {
			m.SetString(existing, "narration", ev.Narration)
			p.attachRecordNarration(pm, existing, ev)
			return
		}
	}

	ind := m.NewIndividual(string(ev.Kind))
	m.SetInt(ind, "inMinute", ev.Minute)
	m.Set(ind, "inMatch", matchIRI)
	m.SetString(ind, "narration", ev.Narration)
	if ev.Kind != soccer.KindUnknown {
		m.SetString(ind, "extractedBy", "ie")
	}

	roles := roleProperties[ev.Kind]
	if ev.HasSubject() {
		if pl, ok := playerIRIs[ev.Subject.Name]; ok {
			prop := roles.subj
			if prop == "" {
				prop = "subjectPlayer"
			}
			m.Set(ind, prop, pl)
		}
	}
	if ev.HasObject() {
		if pl, ok := playerIRIs[ev.Object.Name]; ok {
			prop := roles.obj
			if prop == "" {
				prop = "objectPlayer"
			}
			m.Set(ind, prop, pl)
		}
	}
	if ev.SubjectTeam != "" {
		if tIRI, ok := teamIRIs[ev.SubjectTeam]; ok {
			m.Set(ind, "subjectTeam", tIRI)
			if isGoalKind(ev.Kind) && ev.Kind != soccer.KindOwnGoal {
				m.Set(ind, "scoringTeam", tIRI)
			}
		}
	}
	if ev.ObjectTeam != "" {
		if tIRI, ok := teamIRIs[ev.ObjectTeam]; ok {
			m.Set(ind, "objectTeam", tIRI)
		}
	}
	pm.Events = append(pm.Events, EventRecord{
		Individual: ind, Kind: ev.Kind, Minute: ev.Minute,
		Narration: ev.Narration, NarrationIdx: ev.NarrationIdx,
	})
}

// attachRecordNarration back-fills the narration on the EventRecord created
// from basic information once the extracted duplicate supplies the text.
func (p *Populator) attachRecordNarration(pm *PopulatedMatch, ind rdf.Term, ev ie.Event) {
	for i := range pm.Events {
		if pm.Events[i].Individual == ind {
			if pm.Events[i].Narration == "" {
				pm.Events[i].Narration = ev.Narration
				pm.Events[i].NarrationIdx = ev.NarrationIdx
			}
			// Keep the most specific kind.
			if pm.Events[i].Kind == soccer.KindGoal && ev.Kind != soccer.KindGoal {
				pm.Events[i].Kind = ev.Kind
			}
			return
		}
	}
}

func isGoalKind(k soccer.EventKind) bool {
	switch k {
	case soccer.KindGoal, soccer.KindHeaderGoal, soccer.KindPenaltyGoal,
		soccer.KindFreeKickGoal, soccer.KindOwnGoal:
		return true
	}
	return false
}

func goalKey(minute int, who string) string { return fmt.Sprintf("%d|%s", minute, who) }

// iriSafe turns display names into IRI-safe local names.
func iriSafe(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-', r == '.':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('_')
		default:
			// Drop apostrophes and other punctuation: Eto'o -> Etoo.
		}
	}
	return b.String()
}
