// Package core is the public façade of the retrieval system: it wires the
// full pipeline of Fig. 1 — crawl, information extraction, ontology
// population, inferencing and semantic indexing — behind a small API.
//
//	sys := core.New()
//	if err := sys.CrawlFrom(ctx, "http://site"); err != nil { ... }
//	sys.BuildIndex(semindex.FullInf)
//	hits := sys.Search("messi barcelona goal", 10)
//
// A System owns one ontology, one classified reasoner and one rule set,
// shared across all per-match models, exactly as the paper's offline
// pipeline does.
package core

import (
	"context"
	"fmt"
	"io"

	"repro/internal/crawler"
	"repro/internal/ie"
	"repro/internal/inference"
	"repro/internal/owl"
	"repro/internal/populate"
	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/rules"
	"repro/internal/semindex"
	"repro/internal/shard"
	"repro/internal/soccer"
)

// System is the assembled retrieval pipeline.
type System struct {
	Ontology *owl.Ontology
	Reasoner *reasoner.Reasoner
	Rules    []*rules.Rule

	pages []*crawler.MatchPage
	// lastCrawl is the report of the most recent CrawlFrom, including any
	// pages lost to a degraded crawl.
	lastCrawl *crawler.CrawlReport
	indices   map[semindex.Level]*semindex.SemanticIndex
	// sharded caches partitioned engines by (level, shard count).
	sharded map[shardKey]*shard.Engine
	// populated caches per-match populated models by page ID.
	populated map[string]*populate.PopulatedMatch
	// inferred caches per-match inference results by page ID.
	inferred map[string]inference.Result
}

// shardKey identifies one cached sharded engine.
type shardKey struct {
	level semindex.Level
	n     int
}

// New assembles a system over the soccer ontology and rule set.
func New() *System {
	ont := soccer.BuildOntology()
	return &System{
		Ontology:  ont,
		Reasoner:  reasoner.New(ont),
		Rules:     soccer.Rules(),
		indices:   map[semindex.Level]*semindex.SemanticIndex{},
		sharded:   map[shardKey]*shard.Engine{},
		populated: map[string]*populate.PopulatedMatch{},
		inferred:  map[string]inference.Result{},
	}
}

// CrawlFrom fetches every match page from a served site (Section 3.1
// step 1) and loads it into the system. It crawls with the hardened
// production crawler (retries with backoff, circuit breaker, degraded
// crawls): transient upstream faults cost retries, not the index build.
// Pages lost for good are recorded in LastCrawl's report rather than
// failing the whole acquisition.
func (s *System) CrawlFrom(ctx context.Context, baseURL string) error {
	rep, err := crawler.New().Crawl(ctx, baseURL)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	s.lastCrawl = rep
	s.LoadPages(rep.Pages)
	return nil
}

// LastCrawl returns the report of the most recent successful CrawlFrom
// (nil before any crawl): every page recovered, every page lost, and the
// retry/backoff accounting the resilience layer spent.
func (s *System) LastCrawl() *crawler.CrawlReport { return s.lastCrawl }

// LoadPages loads already-fetched pages (e.g. from crawler.PagesFromCorpus).
func (s *System) LoadPages(pages []*crawler.MatchPage) {
	s.pages = append(s.pages, pages...)
}

// AddPage appends one newly crawled match and incrementally extends every
// already-built index — monolithic and sharded — with its documents, so a
// live deployment can ingest last night's game without a rebuild. Sharded
// engines refresh only the owning shard plus their global statistics.
func (s *System) AddPage(page *crawler.MatchPage) {
	s.IngestPages(page)
}

// IngestPages is the batched form of AddPage: one call commits every
// page — sharded engines take the whole batch as a single Ingest (one
// segment, one statistics fold) rather than a rebuild per page.
func (s *System) IngestPages(pages ...*crawler.MatchPage) {
	if len(pages) == 0 {
		return
	}
	s.pages = append(s.pages, pages...)
	b := &semindex.Builder{Ontology: s.Ontology, Reasoner: s.Reasoner, Rules: s.Rules}
	for _, ix := range s.indices {
		for _, page := range pages {
			b.AddPage(ix, page)
		}
	}
	for _, e := range s.sharded {
		e.Ingest(context.Background(), pages, shard.IngestOptions{})
	}
}

// Pages returns the loaded crawl pages.
func (s *System) Pages() []*crawler.MatchPage { return s.pages }

// Populate runs extraction and ontology population for one page, cached.
func (s *System) Populate(page *crawler.MatchPage) *populate.PopulatedMatch {
	if pm, ok := s.populated[page.ID]; ok {
		return pm
	}
	events := ie.Extractor{}.ExtractMatch(page)
	pm := (&populate.Populator{Ontology: s.Ontology}).Populate(page, events)
	s.populated[page.ID] = pm
	return pm
}

// Infer runs the offline reasoning stage for one page, cached.
func (s *System) Infer(page *crawler.MatchPage) inference.Result {
	if res, ok := s.inferred[page.ID]; ok {
		return res
	}
	pm := s.Populate(page)
	res := inference.Run(s.Reasoner, s.Rules, pm.Model)
	s.inferred[page.ID] = res
	return res
}

// CheckConsistency verifies every loaded match's inferred model and returns
// all violations (empty means the knowledge base is consistent).
func (s *System) CheckConsistency() []reasoner.Violation {
	var out []reasoner.Violation
	for _, page := range s.pages {
		out = append(out, s.Reasoner.CheckConsistency(s.Infer(page).Model)...)
	}
	return out
}

// BuildIndex constructs (and caches) the index at the given level over all
// loaded pages.
func (s *System) BuildIndex(level semindex.Level) *semindex.SemanticIndex {
	if ix, ok := s.indices[level]; ok {
		return ix
	}
	b := &semindex.Builder{Ontology: s.Ontology, Reasoner: s.Reasoner, Rules: s.Rules}
	ix := b.Build(level, s.pages)
	s.indices[level] = ix
	return ix
}

// BuildShardedIndex constructs (and caches) an nShards-way partitioned
// engine at the given level over all loaded pages — the scale-out serving
// shape. Its scatter-gather ranking is identical to the monolithic index's
// (see internal/shard); AddPage keeps cached engines current.
func (s *System) BuildShardedIndex(level semindex.Level, nShards int) *shard.Engine {
	if nShards < 1 {
		nShards = 1
	}
	key := shardKey{level: level, n: nShards}
	if e, ok := s.sharded[key]; ok {
		return e
	}
	b := &semindex.Builder{Ontology: s.Ontology, Reasoner: s.Reasoner, Rules: s.Rules}
	e := shard.Build(b, level, s.pages, shard.Options{Shards: nShards})
	s.sharded[key] = e
	return e
}

// Search queries the FULL_INF index (building it on first use), the
// system's production configuration.
func (s *System) Search(query string, limit int) []semindex.Hit {
	return s.BuildIndex(semindex.FullInf).Search(query, limit)
}

// SearchLevel queries a specific index level.
func (s *System) SearchLevel(level semindex.Level, query string, limit int) []semindex.Hit {
	return s.BuildIndex(level).Search(query, limit)
}

// WriteModel serializes one match's model as Turtle: the pre-inference
// model when inferred is false (the paper's "final OWL files" of step 5)
// or the saturated model (step 7's inferred OWLs).
func (s *System) WriteModel(w io.Writer, page *crawler.MatchPage, inferred bool) error {
	var g *rdf.Graph
	if inferred {
		g = s.Infer(page).Model.Graph
	} else {
		g = s.Populate(page).Model.Graph
	}
	return rdf.WriteTurtle(w, g)
}

// Summary describes the loaded state, for CLIs and logs.
func (s *System) Summary() string {
	events := 0
	for _, pm := range s.populated {
		events += len(pm.Events)
	}
	return fmt.Sprintf("%d pages loaded, %d populated matches (%d event records), %d indices built, %d sharded engines",
		len(s.pages), len(s.populated), events, len(s.indices), len(s.sharded))
}
