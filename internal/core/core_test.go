package core

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/crawler"
	"repro/internal/rdf"
	"repro/internal/semindex"
	"repro/internal/soccer"
)

func testSystem(t testing.TB, matches int) *System {
	t.Helper()
	c := soccer.Generate(soccer.Config{Matches: matches, Seed: 42, NarrationsPerMatch: 60, PaperCoverage: matches >= 2})
	s := New()
	s.LoadPages(crawler.PagesFromCorpus(c))
	return s
}

func TestCrawlFromEndToEnd(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 3, Seed: 1, NarrationsPerMatch: 40})
	srv := httptest.NewServer(crawler.NewServer(c))
	defer srv.Close()

	s := New()
	if err := s.CrawlFrom(context.Background(), srv.URL); err != nil {
		t.Fatalf("CrawlFrom: %v", err)
	}
	if len(s.Pages()) != 3 {
		t.Fatalf("%d pages", len(s.Pages()))
	}
	hits := s.Search("corner", 5)
	if len(hits) == 0 {
		t.Error("search returned nothing after crawl")
	}
}

// TestCrawlFromSurvivesFaults: the façade crawls with the hardened
// client, so a faulty origin costs retries — recorded in LastCrawl — not
// pages.
func TestCrawlFromSurvivesFaults(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 3, Seed: 1, NarrationsPerMatch: 40})
	srv := httptest.NewServer(crawler.WithFaults(crawler.NewServer(c),
		crawler.FaultConfig{Seed: 1, DropRate: 0.2, ErrorRate: 0.1}))
	defer srv.Close()

	s := New()
	if err := s.CrawlFrom(context.Background(), srv.URL); err != nil {
		t.Fatalf("CrawlFrom under faults: %v", err)
	}
	if len(s.Pages()) != 3 {
		t.Fatalf("%d pages recovered, want 3", len(s.Pages()))
	}
	rep := s.LastCrawl()
	if rep == nil || rep.Degraded() {
		t.Fatalf("LastCrawl = %v", rep)
	}
	if rep.Stats.Retries == 0 {
		t.Error("no retries recorded despite injected faults")
	}
}

func TestCrawlFromError(t *testing.T) {
	s := New()
	if err := s.CrawlFrom(context.Background(), "http://127.0.0.1:1"); err == nil {
		t.Error("CrawlFrom of dead endpoint succeeded")
	}
}

func TestSearchPaperQuery(t *testing.T) {
	s := testSystem(t, 2)
	hits := s.Search("messi barcelona goal", 3)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if !strings.Contains(hits[0].Meta(semindex.MetaSubject), "Messi") {
		t.Errorf("top hit subject = %q", hits[0].Meta(semindex.MetaSubject))
	}
}

func TestSearchLevelCaching(t *testing.T) {
	s := testSystem(t, 1)
	a := s.BuildIndex(semindex.Trad)
	b := s.BuildIndex(semindex.Trad)
	if a != b {
		t.Error("BuildIndex did not cache")
	}
	if len(s.SearchLevel(semindex.Trad, "corner", 2)) == 0 {
		t.Error("TRAD search empty")
	}
}

func TestPopulateAndInferCaching(t *testing.T) {
	s := testSystem(t, 1)
	page := s.Pages()[0]
	if s.Populate(page) != s.Populate(page) {
		t.Error("Populate did not cache")
	}
	r1 := s.Infer(page)
	r2 := s.Infer(page)
	if r1.Model != r2.Model {
		t.Error("Infer did not cache")
	}
	if r1.Model.Graph.Len() <= s.Populate(page).Model.Graph.Len() {
		t.Error("inference added nothing")
	}
}

func TestCheckConsistency(t *testing.T) {
	s := testSystem(t, 2)
	if v := s.CheckConsistency(); len(v) != 0 {
		t.Errorf("violations on generated corpus: %v", v[:min(3, len(v))])
	}
}

func TestWriteModelTurtle(t *testing.T) {
	s := testSystem(t, 1)
	page := s.Pages()[0]
	var plain, inferred bytes.Buffer
	if err := s.WriteModel(&plain, page, false); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteModel(&inferred, page, true); err != nil {
		t.Fatal(err)
	}
	if plain.Len() == 0 || inferred.Len() <= plain.Len() {
		t.Errorf("turtle sizes: plain=%d inferred=%d", plain.Len(), inferred.Len())
	}
	if !strings.Contains(plain.String(), "@prefix pre:") {
		t.Error("turtle missing prefix header")
	}
}

func TestWriteModelTurtleRoundTripLossless(t *testing.T) {
	// The per-match OWL files of pipeline steps 5 and 7 must survive disk:
	// serialize every model (plain and inferred) and parse it back, triple
	// for triple.
	s := testSystem(t, 2)
	for _, page := range s.Pages() {
		for _, inferred := range []bool{false, true} {
			var buf bytes.Buffer
			if err := s.WriteModel(&buf, page, inferred); err != nil {
				t.Fatal(err)
			}
			got, err := rdf.ReadTurtle(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("match %s inferred=%v: %v", page.ID, inferred, err)
			}
			var want *rdf.Graph
			if inferred {
				want = s.Infer(page).Model.Graph
			} else {
				want = s.Populate(page).Model.Graph
			}
			if got.Len() != want.Len() {
				t.Fatalf("match %s inferred=%v: %d triples back, want %d",
					page.ID, inferred, got.Len(), want.Len())
			}
			for _, tr := range want.All() {
				if !got.Has(tr) {
					t.Fatalf("match %s: lost triple %v", page.ID, tr)
				}
			}
		}
	}
}

func TestConcurrentSearch(t *testing.T) {
	// The serving story: one built index, many concurrent readers.
	s := testSystem(t, 2)
	s.BuildIndex(semindex.FullInf)
	queries := []string{"goal", "punishment", "messi", "save goalkeeper barcelona", "foul"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := queries[(w+i)%len(queries)]
				if hits := s.Search(q, 5); len(hits) == 0 && q != "nonexistent" {
					t.Errorf("concurrent search %q returned nothing", q)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestSummary(t *testing.T) {
	s := testSystem(t, 2)
	s.Search("goal", 1)
	sum := s.Summary()
	if !strings.Contains(sum, "2 pages loaded") {
		t.Errorf("Summary = %q", sum)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestAddPageIncrementalIndexing(t *testing.T) {
	// Build over 2 matches, then ingest a third incrementally: the index
	// must grow and serve the new match's events without a rebuild.
	c := soccer.Generate(soccer.Config{Matches: 3, Seed: 42, NarrationsPerMatch: 60, PaperCoverage: true})
	pages := crawler.PagesFromCorpus(c)
	s := New()
	s.LoadPages(pages[:2])
	si := s.BuildIndex(semindex.FullInf)
	before := si.Index.NumDocs()

	// A query only the third match can answer: its match id.
	third := pages[2]
	s.AddPage(third)
	if si.Index.NumDocs() <= before {
		t.Fatalf("index did not grow: %d -> %d", before, si.Index.NumDocs())
	}
	found := false
	for _, h := range s.Search("goal", 0) {
		if h.Meta(semindex.MetaMatchID) == third.ID {
			found = true
		}
	}
	if !found {
		// The third match may genuinely have no goals; check any event kind.
		for _, h := range s.Search("foul", 0) {
			if h.Meta(semindex.MetaMatchID) == third.ID {
				found = true
			}
		}
	}
	if !found {
		t.Error("incrementally added match is not retrievable")
	}
	if len(s.Pages()) != 3 {
		t.Errorf("pages = %d", len(s.Pages()))
	}
}

// TestBuildShardedIndex: the system-level sharded path must rank exactly
// like the monolithic index, stay cached, and absorb incremental pages.
func TestBuildShardedIndex(t *testing.T) {
	s := testSystem(t, 3)
	eng := s.BuildShardedIndex(semindex.FullInf, 2)
	if eng != s.BuildShardedIndex(semindex.FullInf, 2) {
		t.Error("sharded engine not cached")
	}
	mono := s.BuildIndex(semindex.FullInf)
	got := eng.SearchHits("messi barcelona goal", 10)
	want := mono.Search("messi barcelona goal", 10)
	if len(got) != len(want) {
		t.Fatalf("%d hits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].DocID != want[i].DocID || got[i].Score != want[i].Score {
			t.Errorf("rank %d: (%d, %v) want (%d, %v)",
				i+1, got[i].DocID, got[i].Score, want[i].DocID, want[i].Score)
		}
	}

	// AddPage must extend both serving shapes identically.
	extra := soccer.Generate(soccer.Config{Matches: 4, Seed: 99, NarrationsPerMatch: 40})
	s.AddPage(crawler.PagesFromCorpus(extra)[3])
	if eng.NumDocs() != mono.Index.NumDocs() {
		t.Errorf("after AddPage: engine %d docs, monolith %d", eng.NumDocs(), mono.Index.NumDocs())
	}
}

// TestSearchLevelDAATEquivalence drives the DAAT-equals-exhaustive
// contract through the full system façade at every semantic level: the
// pruned kernel must return the exact hits — documents, scores, order —
// the term-at-a-time path does, for plain, phrasal and advanced-syntax
// queries alike.
func TestSearchLevelDAATEquivalence(t *testing.T) {
	s := testSystem(t, 3)
	queries := []string{
		"goal", "yellow card corner", "goal by player",
		`"free kick"`, "+goal -card", "gaol~",
	}
	for _, level := range semindex.Levels {
		ix := s.BuildIndex(level)
		for _, q := range queries {
			for _, limit := range []int{0, 1, 5, 50} {
				pruned := s.SearchLevel(level, q, limit)
				ix.Index.SetExhaustive(true)
				exhaustive := s.SearchLevel(level, q, limit)
				ix.Index.SetExhaustive(false)
				if len(pruned) != len(exhaustive) {
					t.Fatalf("%s %q limit %d: %d hits pruned, %d exhaustive",
						level, q, limit, len(pruned), len(exhaustive))
				}
				for i := range exhaustive {
					if pruned[i].DocID != exhaustive[i].DocID || pruned[i].Score != exhaustive[i].Score {
						t.Errorf("%s %q limit %d rank %d: (%d, %v) want (%d, %v)",
							level, q, limit, i+1,
							pruned[i].DocID, pruned[i].Score,
							exhaustive[i].DocID, exhaustive[i].Score)
					}
				}
			}
		}
	}
}
