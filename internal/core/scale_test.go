package core

import (
	"testing"

	"repro/internal/crawler"
	"repro/internal/eval"
	"repro/internal/semindex"
	"repro/internal/soccer"
)

// TestScaleSoak runs the entire pipeline over a corpus an order of
// magnitude larger than the paper's and re-checks the load-bearing
// invariants: the knowledge base stays consistent, every evaluation query
// keeps a non-empty relevant set, and FULL_INF keeps its retrieval quality.
// Skipped under -short.
func TestScaleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("scale soak skipped in -short mode")
	}
	c := soccer.Generate(soccer.Config{Matches: 100, Seed: 13, NarrationsPerMatch: 118, PaperCoverage: true})
	if c.NarrationCount() < 10000 {
		t.Fatalf("corpus too small: %s", c.Stats())
	}
	s := New()
	s.LoadPages(crawler.PagesFromCorpus(c))

	if v := s.CheckConsistency(); len(v) != 0 {
		t.Fatalf("%d violations at scale; first: %v", len(v), v[0])
	}

	si := s.BuildIndex(semindex.FullInf)
	if si.Index.NumDocs() < 10000 {
		t.Errorf("index has %d docs", si.Index.NumDocs())
	}

	j := eval.NewJudge(c)
	for _, q := range eval.PaperQueries() {
		res := j.Evaluate(q, si)
		if res.Relevant == 0 {
			t.Errorf("%s: empty relevant set at scale", q.ID)
			continue
		}
		// The inference-dependent queries must stay strong at 10x scale.
		switch q.ID {
		case "Q-4", "Q-10":
			if res.AP < 0.9 {
				t.Errorf("%s: AP %.3f at scale", q.ID, res.AP)
			}
		case "Q-1":
			if res.AP < 0.9 {
				t.Errorf("Q-1: AP %.3f at scale", res.AP)
			}
		}
	}
}
