package expansion

import (
	"strings"
	"testing"
)

func TestExpandDomainVerbs(t *testing.T) {
	e := New()
	got := e.Expand("goal")
	for _, want := range []string{"goal", "scores", "scored", "misses"} {
		if !strings.Contains(" "+got+" ", " "+want+" ") {
			t.Errorf("Expand(goal) = %q missing %q", got, want)
		}
	}
}

func TestExpandOntologicalSubclasses(t *testing.T) {
	// The paper's example: "punishment" is augmented with its subclasses
	// "yellow card" and "red card" as well as the verb "book".
	e := New()
	got := e.Expand("punishment")
	for _, want := range []string{"punishment", "booked", "yellow", "red", "card"} {
		if !strings.Contains(" "+got+" ", " "+want+" ") {
			t.Errorf("Expand(punishment) = %q missing %q", got, want)
		}
	}
}

func TestExpandKeepsOriginalTokensFirst(t *testing.T) {
	e := New()
	got := strings.Fields(e.Expand("barcelona goal"))
	if len(got) < 2 || got[0] != "barcelona" || got[1] != "goal" {
		t.Errorf("original tokens not preserved in order: %v", got)
	}
}

func TestExpandNoDuplicates(t *testing.T) {
	e := New()
	got := strings.Fields(e.Expand("goal goal scores"))
	seen := map[string]bool{}
	for _, w := range got {
		if seen[w] {
			t.Errorf("duplicate token %q in %v", w, got)
		}
		seen[w] = true
	}
}

func TestExpandUnknownTermUnchanged(t *testing.T) {
	e := New()
	if got := e.Expand("ronaldo"); got != "ronaldo" {
		t.Errorf("Expand(ronaldo) = %q", got)
	}
}

func TestExpandWithoutReasoner(t *testing.T) {
	e := &Expander{}
	got := e.Expand("punishment")
	if !strings.Contains(got, "booked") {
		t.Errorf("domain map not applied: %q", got)
	}
	if strings.Contains(got, "yellow") {
		t.Errorf("ontological expansion applied without reasoner: %q", got)
	}
}

func TestExpandCustomTerms(t *testing.T) {
	e := &Expander{Terms: map[string][]string{"rebound": {"basket", "board"}}}
	got := e.Expand("rebound")
	if !strings.Contains(got, "basket") || !strings.Contains(got, "board") {
		t.Errorf("custom terms ignored: %q", got)
	}
}

func TestCamelToWords(t *testing.T) {
	if got := camelToWords("SecondYellowCard"); got != "Second Yellow Card" {
		t.Errorf("camelToWords = %q", got)
	}
}
