// Package expansion implements the query-expansion baseline of Section 5:
// query keywords are widened with hand-listed domain verbs ("goal" gains
// "score", "miss" and their derivatives) and with ontological knowledge
// ("punishment" gains its subclasses "yellow card" and "red card" plus the
// verb "book"), and the expanded query runs directly against the
// traditional free-text index.
//
// The paper's finding — expansion lands between TRAD and semantic indexing
// because extra terms also introduce false positives — is reproduced by
// Table 5's bench.
package expansion

import (
	"strings"

	"repro/internal/index"
	"repro/internal/reasoner"
	"repro/internal/soccer"
)

// DomainTerms is the hand-crafted verb/derivative map. Keys and values are
// lowercase surface forms; the analyzer handles stemming, so one derivative
// per stem family suffices.
var DomainTerms = map[string][]string{
	"goal":       {"scores", "scored", "misses"},
	"punishment": {"booked", "card"},
	"yellow":     {"booked"},
	"save":       {"denying", "saves"},
	"shoot":      {"shot", "fires", "shoots"},
	"foul":       {"fouls", "challenge", "free-kick"},
	"pass":       {"crosses", "delivers"},
	"offside":    {"flagged"},
	"negative":   {"offside", "foul", "booked"},
	"moves":      {"challenge"},
	"corner":     {"delivers"},
	"assist":     {"pass"},
}

// Expander widens keyword queries.
type Expander struct {
	// Reasoner supplies the ontological subclass expansion; nil disables it.
	Reasoner *reasoner.Reasoner
	// Terms is the domain verb map; nil uses DomainTerms.
	Terms map[string][]string
}

// New returns an expander over the soccer ontology.
func New() *Expander {
	return &Expander{Reasoner: reasoner.New(soccer.BuildOntology())}
}

// Expand returns the expanded keyword query: the original tokens followed
// by their domain-verb expansions and, for tokens naming an ontology class,
// the camel-split names of all subclasses.
func (e *Expander) Expand(query string) string {
	terms := e.Terms
	if terms == nil {
		terms = DomainTerms
	}
	tokens := index.Tokenize(strings.ToLower(query))
	var out []string
	seen := map[string]bool{}
	for _, t := range tokens {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	add := func(s string) {
		for _, w := range index.Tokenize(strings.ToLower(s)) {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	for _, t := range tokens {
		for _, x := range terms[t] {
			add(x)
		}
		if e.Reasoner != nil {
			e.expandOntological(t, add)
		}
	}
	return strings.Join(out, " ")
}

// expandOntological appends the subclasses of any ontology class whose
// camel-split name equals the token ("punishment" -> YellowCard, RedCard,
// SecondYellowCard).
func (e *Expander) expandOntological(token string, add func(string)) {
	ont := e.Reasoner.Ontology()
	for _, c := range ont.Classes() {
		if !strings.EqualFold(c.IRI.LocalName(), token) {
			continue
		}
		for _, sub := range e.Reasoner.SubClasses(c.IRI) {
			add(camelToWords(sub.LocalName()))
		}
	}
}

func camelToWords(s string) string {
	var b strings.Builder
	for i, r := range s {
		if i > 0 && r >= 'A' && r <= 'Z' {
			b.WriteByte(' ')
		}
		b.WriteRune(r)
	}
	return b.String()
}
