package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the fixed histogram bounds (seconds) used for
// every latency metric in the stack: 100µs to 10s, roughly exponential.
// They bracket the observed query path — a paper-scale keyword search
// lands in the 100µs–5ms range, a sharded scatter-gather over a large
// corpus in the 1–50ms range, and the top bucket catches pathological
// stalls that should have been deadlined.
//
// Above 100ms the layout is denser than a pure powers-of-~2.5 ladder
// (0.075/0.15/0.35/0.75/1.5 interleave the original bounds): the load
// harness reports p999 from these histograms, and at million-doc corpus
// sizes the tail lands exactly in the 100ms–2s range where the old
// layout jumped 2.5x between bounds — too coarse for a p999 estimate to
// mean anything. The new layout is a strict superset of the old one, so
// Prometheus series recorded at the old le= bounds keep their meaning
// (TestLatencyBucketsP999Resolution pins both properties).
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.075, 0.1, 0.15, 0.25, 0.35, 0.5, 0.75, 1, 1.5, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with lock-free observation: one
// atomic add on the owning bucket, one on the count, one CAS on the sum.
// Bounds are upper bounds in ascending order with an implicit +Inf bucket.
// A nil *Histogram ignores observations.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// normalizeBuckets copies and sorts bounds ascending, dropping duplicates,
// so a family's exposition is always well-formed.
func normalizeBuckets(bounds []float64) []float64 {
	out := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		out = append(out, b)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	dedup := out[:0]
	for i, b := range out {
		if i == 0 || b != out[i-1] {
			dedup = append(dedup, b)
		}
	}
	return dedup
}

// Observe records one value (seconds, for latency histograms).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: the default bucket count is 21 and the slice is hot in
	// cache; a binary search costs more in branches than it saves.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			break
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return bitsFloat(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the owning bucket — the same estimate a Prometheus
// histogram_quantile() would produce. It returns NaN with no observations.
// Values in the +Inf bucket clamp to the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 || q <= 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: the best point estimate is the last bound.
				if len(h.bounds) == 0 {
					return math.NaN()
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (h.bounds[i]-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
