package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", L("route", "/search"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same name+labels resolves to the same series.
	if again := r.Counter("requests_total", L("route", "/search")); again.Value() != 5 {
		t.Errorf("re-resolved counter = %d, want 5", again.Value())
	}
	// Different labels are a different series.
	if other := r.Counter("requests_total", L("route", "/related")); other.Value() != 0 {
		t.Errorf("new series = %d, want 0", other.Value())
	}

	g := r.Gauge("inflight")
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Errorf("gauge = %v, want 1", got)
	}
	g.Set(7.5)
	if got := g.Value(); got != 7.5 {
		t.Errorf("gauge = %v, want 7.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(2)
	h.Observe(0.5)
	h.ObserveDuration(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil handles must be inert")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("nil histogram quantile must be NaN")
	}
	var tr *Trace
	tr.Span("s")()
	tr.AddSpan("s", time.Now(), time.Millisecond)
	if tr.Finish() != 0 || tr.String() != "" || tr.Spans() != nil {
		t.Error("nil trace must be inert")
	}
	var sl *SlowLog
	if sl.Record(NewTrace("q")) {
		t.Error("nil slow log must not record")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Errorf("nil registry exposition: %v", err)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m")
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for i := 0; i < 100; i++ {
		h.Observe(0.005) // all in the first bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if got := h.Sum(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("sum = %v, want 0.5", got)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 0.01 {
		t.Errorf("p50 = %v, want within first bucket (0, 0.01]", q)
	}
	h.Observe(5) // +Inf bucket clamps to last bound
	if q := h.Quantile(1); q != 1 {
		t.Errorf("p100 = %v, want clamp to 1", q)
	}

	empty := r.Histogram("empty_seconds", nil)
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty histogram quantile must be NaN")
	}
}

func TestBucketNormalization(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 0.1, 0.1, 0.01})
	h.Observe(0.05)
	want := []float64{0.01, 0.1, 1}
	if len(h.bounds) != len(want) {
		t.Fatalf("bounds = %v, want %v", h.bounds, want)
	}
	for i := range want {
		if h.bounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", h.bounds, want)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Help("searches_total", "Total searches.")
	r.Counter("searches_total", L("shard", "0")).Add(3)
	r.Counter("searches_total", L("shard", "1")).Add(7)
	r.Gauge("inflight").Set(2)
	h := r.Histogram("search_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP searches_total Total searches.",
		"# TYPE searches_total counter",
		`searches_total{shard="0"} 3`,
		`searches_total{shard="1"} 7`,
		"# TYPE inflight gauge",
		"inflight 2",
		"# TYPE search_seconds histogram",
		`search_seconds_bucket{le="0.1"} 1`,
		`search_seconds_bucket{le="1"} 2`,
		`search_seconds_bucket{le="+Inf"} 3`,
		"search_seconds_sum 2.55",
		"search_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families are sorted by name.
	if strings.Index(out, "inflight") > strings.Index(out, "search_seconds") {
		t.Error("families not sorted by name")
	}

	// The HTTP handler serves the same bytes with the right content type.
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", L("q", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `q="a\"b\\c\nd"`) {
		t.Errorf("labels not escaped: %s", b.String())
	}
}

// TestConcurrentUpdates exercises the lock-free paths under -race: many
// goroutines hammering one counter, gauge and histogram while exposition
// runs concurrently.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", nil)
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	// Exposition and resolution race the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			r.WritePrometheus(&b)
			r.Counter("c")
		}
	}()
	wg.Wait()
	if c.Value() != workers*iters {
		t.Errorf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != workers*iters {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	if math.Abs(h.Sum()-workers*iters*0.001) > 1e-6 {
		t.Errorf("histogram sum = %v", h.Sum())
	}
}

// TestLatencyBucketsP999Resolution pins the bucket-layout contract the
// load harness depends on: the default layout must remain a strict
// superset of the pre-extension layout (so dashboards keyed on the old
// le= bounds keep reading the same cumulative series), stay sorted and
// duplicate-free, and keep consecutive bounds above 50ms within 2x of
// each other so a p999 interpolated inside one bucket is a meaningful
// estimate rather than a 2.5x-wide guess.
func TestLatencyBucketsP999Resolution(t *testing.T) {
	// The layout before the p999 extension — frozen, never edit.
	legacy := []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
	have := map[float64]bool{}
	for _, b := range DefaultLatencyBuckets {
		have[b] = true
	}
	for _, b := range legacy {
		if !have[b] {
			t.Errorf("legacy bound %g dropped from DefaultLatencyBuckets", b)
		}
	}
	for i := 1; i < len(DefaultLatencyBuckets); i++ {
		lo, hi := DefaultLatencyBuckets[i-1], DefaultLatencyBuckets[i]
		if hi <= lo {
			t.Errorf("buckets not strictly ascending at %d: %g then %g", i, lo, hi)
		}
		if lo >= 0.05 && hi/lo > 2.0 {
			t.Errorf("tail resolution too coarse: %g -> %g is %.2fx (max 2x)", lo, hi, hi/lo)
		}
	}

	// Exposition at the old bounds stays well-formed and cumulative.
	r := NewRegistry()
	h := r.Histogram("lat_seconds", DefaultLatencyBuckets)
	for _, v := range []float64{0.0002, 0.08, 0.12, 0.3, 1.2, 3} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="0.25"} 3`,
		`lat_seconds_bucket{le="0.5"} 4`,
		`lat_seconds_bucket{le="2.5"} 5`,
		`lat_seconds_bucket{le="+Inf"} 6`,
		"lat_seconds_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}
