package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed step of a trace, as offsets from the trace start so a
// rendered trace reads as a timeline.
type Span struct {
	Name  string
	Start time.Duration
	Dur   time.Duration
}

// Trace records the timed steps of one query (parse → scatter → per-shard
// search → merge on the sharded path). It is safe for concurrent span
// recording — scatter goroutines append spans in parallel — and a nil
// *Trace ignores everything, so the engine's hot path only pays for
// tracing when a caller asked for it.
type Trace struct {
	// ID is the request-unique identifier surfaced in access logs and the
	// X-Trace-ID response header.
	ID string
	// Name labels the traced operation (the request path, the query).
	Name string

	begin time.Time
	mu    sync.Mutex
	spans []Span
	total time.Duration
	done  bool
}

// traceSeq and traceEpoch make IDs unique within a process and unlikely to
// collide across restarts without any external dependency.
var (
	traceSeq   atomic.Uint64
	traceEpoch = uint64(time.Now().UnixNano())
)

// NewTrace starts a trace now.
func NewTrace(name string) *Trace {
	return &Trace{
		ID:    fmt.Sprintf("%08x-%06d", uint32(traceEpoch), traceSeq.Add(1)),
		Name:  name,
		begin: time.Now(),
	}
}

// Span starts a named span and returns the func that ends it. Safe on a
// nil trace (returns a no-op).
func (t *Trace) Span(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.AddSpan(name, start, time.Since(start)) }
}

// AddSpan records an already-timed span. Safe on a nil trace and from
// concurrent goroutines.
func (t *Trace) AddSpan(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start.Sub(t.begin), Dur: d})
	t.mu.Unlock()
}

// Finish fixes the trace's total duration (first call wins) and returns it.
// Safe on a nil trace (returns 0).
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.done {
		t.total = time.Since(t.begin)
		t.done = true
	}
	return t.total
}

// Total returns the finished duration (elapsed time if not finished yet).
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return t.total
	}
	return time.Since(t.begin)
}

// Spans returns a copy of the recorded spans in start order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// String renders the trace as one log line:
//
//	trace 01a2b3c4-000017 /search?q=goal 1.8ms: shard0=1.1ms shard1=1.3ms merge=60µs
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s %s %s:", t.ID, t.Name, t.Total().Round(time.Microsecond))
	for _, s := range t.Spans() {
		fmt.Fprintf(&b, " %s=%s", s.Name, s.Dur.Round(time.Microsecond))
	}
	return b.String()
}

// traceKey carries a *Trace through a context.
type traceKey struct{}

// WithTrace attaches a trace to a context so handlers deeper in the stack
// can add spans to the request's trace.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil (which every Trace method
// tolerates) when none is attached.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// SlowLog writes finished traces that exceeded a threshold — the
// slow-query log. The zero value (and a nil *SlowLog) logs nothing; set
// Threshold and Out to enable. Safe for concurrent use.
type SlowLog struct {
	// Threshold is the minimum total duration worth logging; 0 disables.
	Threshold time.Duration
	// Out receives one line per slow trace.
	Out io.Writer

	mu sync.Mutex
}

// Record logs the trace if it ran at least Threshold, returning whether it
// was logged. It finishes the trace if the caller has not.
func (l *SlowLog) Record(t *Trace) bool {
	if l == nil || l.Out == nil || l.Threshold <= 0 || t == nil {
		return false
	}
	if t.Finish() < l.Threshold {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.Out, "slow query: %s\n", t)
	return true
}
