package obs

import (
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by label
// signature, histograms expanded into cumulative _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.name)
			b.WriteByte(' ')
			b.WriteString(f.help)
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				writeSample(&b, f.name, "", s.key, "", float64(s.c.Value()))
			case kindGauge:
				writeSample(&b, f.name, "", s.key, "", s.g.Value())
			case kindHistogram:
				cum := uint64(0)
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					writeSample(&b, f.name, "_bucket", s.key,
						`le="`+formatFloat(bound)+`"`, float64(cum))
				}
				writeSample(&b, f.name, "_bucket", s.key, `le="+Inf"`, float64(s.h.Count()))
				writeSample(&b, f.name, "_sum", s.key, "", s.h.Sum())
				writeSample(&b, f.name, "_count", s.key, "", float64(s.h.Count()))
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeSample renders one sample line: name{labels,extra} value.
func writeSample(b *strings.Builder, name, suffix, key, extra string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if key != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(key)
		if key != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry in Prometheus text format — mount it at
// /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
