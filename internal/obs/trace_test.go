package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpansAndString(t *testing.T) {
	tr := NewTrace("/search?q=goal")
	end := tr.Span("parse")
	time.Sleep(time.Millisecond)
	end()
	tr.AddSpan("merge", time.Now(), 2*time.Millisecond)
	total := tr.Finish()
	if total < time.Millisecond {
		t.Errorf("total = %v, want >= 1ms", total)
	}
	// Finish is idempotent: the first total sticks.
	time.Sleep(time.Millisecond)
	if tr.Finish() != total {
		t.Error("Finish not idempotent")
	}
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "parse" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Dur < time.Millisecond {
		t.Errorf("parse span = %v, want >= 1ms", spans[0].Dur)
	}
	s := tr.String()
	for _, want := range []string{"trace ", tr.ID, "/search?q=goal", "parse=", "merge="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTrace("x").ID
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

// TestTraceConcurrentSpans mirrors the scatter path: goroutines record
// per-shard spans into one trace (the race detector is the assertion).
func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("scatter")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			end := tr.Span("shard")
			end()
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 8 {
		t.Errorf("spans = %d, want 8", got)
	}
}

func TestTraceContext(t *testing.T) {
	tr := NewTrace("x")
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Error("trace lost through context")
	}
	if TraceFrom(context.Background()) != nil {
		t.Error("empty context must yield nil trace")
	}
}

func TestSlowLog(t *testing.T) {
	var fast, slow strings.Builder

	l := &SlowLog{Threshold: time.Hour, Out: &fast}
	if l.Record(NewTrace("quick")) {
		t.Error("sub-threshold trace logged")
	}
	if fast.Len() != 0 {
		t.Errorf("fast log = %q, want empty", fast.String())
	}

	l = &SlowLog{Threshold: time.Nanosecond, Out: &slow}
	tr := NewTrace("/search?q=goal")
	time.Sleep(time.Millisecond)
	if !l.Record(tr) {
		t.Fatal("over-threshold trace not logged")
	}
	if got := slow.String(); !strings.Contains(got, "slow query:") || !strings.Contains(got, tr.ID) {
		t.Errorf("slow log = %q", got)
	}

	// Disabled configurations never log.
	if (&SlowLog{Out: &slow}).Record(tr) {
		t.Error("zero threshold must disable")
	}
	if (&SlowLog{Threshold: time.Nanosecond}).Record(tr) {
		t.Error("nil output must disable")
	}
}
