// Package obs is the query-path observability layer: a dependency-free,
// concurrency-safe metrics registry (atomic counters, gauges and
// fixed-bucket latency histograms — no locks on the hot path), Prometheus
// text-format exposition, and lightweight per-query trace spans with a
// configurable slow-query log.
//
// Handles are resolved once (Registry.Counter / Gauge / Histogram take a
// creation lock) and then updated with single atomic operations, so the
// search and ingest hot paths pay a few nanoseconds per event. Every
// handle type tolerates a nil receiver as a no-op, and a nil *Registry
// hands out nil handles — "metrics off" is expressed by wiring nil, not
// by branching at every call site.
//
// The paper's scalability claim (Sections 3.6, 7) is only as good as the
// latency evidence behind it; this package is the substrate every perf
// measurement in BENCH_*.json comes from.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing metric. The zero value is ready;
// a nil *Counter ignores updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down (in-flight requests, sizes).
// The zero value is ready; a nil *Gauge ignores updates.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(floatBits(v))
	}
}

// Add adds delta with a CAS loop (lock-free).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return bitsFloat(g.bits.Load())
}

// metricKind partitions a registry's families for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (name, labels) time series and its typed value.
type series struct {
	labels []Label
	key    string // rendered label signature, for sorting and dedup
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name    string
	kind    metricKind
	help    string
	buckets []float64 // histograms only; fixed at family creation
	series  []*series // sorted by key
	byKey   map[string]*series
}

// Registry holds metric families and hands out series handles. All methods
// are safe for concurrent use; handle resolution takes a lock, handle
// updates never do. A nil *Registry is valid and hands out nil (no-op)
// handles, so instrumented code can be "switched off" by wiring nil.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	// pendingHelp holds Help texts set before the family's first series.
	pendingHelp map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry the stack wires by default; the
// socserve /metrics endpoint exposes it.
var Default = NewRegistry()

// Counter returns the counter series for name+labels, creating it (and its
// family) on first use. Reusing a name with a different metric kind panics:
// that is a programming error exposition could not represent.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	s := r.resolve(name, kindCounter, nil, labels)
	if s == nil {
		return nil
	}
	return s.c
}

// Gauge returns the gauge series for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	s := r.resolve(name, kindGauge, nil, labels)
	if s == nil {
		return nil
	}
	return s.g
}

// Histogram returns the histogram series for name+labels, creating it on
// first use with the given bucket upper bounds (ascending, in seconds for
// latency metrics; nil means DefaultLatencyBuckets). The family's buckets
// are fixed by the first creation; later calls reuse them.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	s := r.resolve(name, kindHistogram, buckets, labels)
	if s == nil {
		return nil
	}
	return s.h
}

// Help attaches a # HELP line to a family (created on demand as a counter
// placeholder if it does not exist yet — kind is fixed by first real use).
func (r *Registry) Help(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		f.help = help
		return
	}
	// Remember the help text for a family registered later.
	if r.pendingHelp == nil {
		r.pendingHelp = map[string]string{}
	}
	r.pendingHelp[name] = help
}

func (r *Registry) resolve(name string, kind metricKind, buckets []float64, labels []Label) *series {
	if r == nil {
		return nil
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		if kind == kindHistogram {
			if len(buckets) == 0 {
				buckets = DefaultLatencyBuckets
			}
			buckets = normalizeBuckets(buckets)
		}
		f = &family{name: name, kind: kind, buckets: buckets, byKey: map[string]*series{}}
		if h, ok := r.pendingHelp[name]; ok {
			f.help = h
			delete(r.pendingHelp, name)
		}
		r.families[name] = f
	}
	if f.kind != kind {
		panic("obs: metric " + name + " registered as " + f.kind.String() + ", requested as " + kind.String())
	}
	if s := f.byKey[key]; s != nil {
		return s
	}
	s := &series{labels: append([]Label(nil), labels...), key: key}
	switch kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = newHistogram(f.buckets)
	}
	f.byKey[key] = s
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].key < f.series[j].key })
	return s
}

// labelKey renders labels into a stable signature: sorted by name.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel applies the Prometheus text-format label escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
