package semindex

import (
	"strings"

	"repro/internal/index"
)

// QueryFootprint returns the (field, analyzed term) pairs whose corpus
// statistics the query's ranking depends on — the inputs the sharded
// engine's scoped cache invalidation must watch. It mirrors buildQuery's
// routing exactly: TRAD expands over the narration field, PHR_EXP fuses
// "by/of/to X" pairs into the phrase fields, and everything else expands
// over the standard query boosts. Zero-boost fields contribute nothing
// (MultiFieldQuery drops them), and a token the analyzer swallows (a
// stopword) contributes nothing, matching the query that will actually run.
//
// ok is false when the query may take the advanced-parser path. That
// decision is deliberately stricter than hasAdvancedSyntax: a ':' inside
// any token disqualifies the query even if no current field matches the
// prefix, because hasAdvancedSyntax consults HasField and the footprint
// must hold for every partition regardless of which fields it happens to
// carry. Callers treat ok=false as "every statistic is load-bearing".
func (s *SemanticIndex) QueryFootprint(query string) ([]index.FieldTerm, bool) {
	if mayUseAdvancedSyntax(query) {
		return nil, false
	}
	an := s.Index.Analyzer()
	var out []index.FieldTerm
	addMulti := func(text string, boosts []index.FieldBoost) {
		for _, tok := range index.Tokenize(text) {
			for _, term := range an.Analyze(tok) {
				for _, fb := range boosts {
					if fb.Boost != 0 {
						out = append(out, index.FieldTerm{Field: fb.Field, Term: term})
					}
				}
			}
		}
	}
	switch s.Level {
	case Trad:
		addMulti(query, TradBoosts)
	case PhrExp:
		tokens := index.Tokenize(strings.ToLower(query))
		var plain []string
		for i := 0; i < len(tokens); i++ {
			tok := tokens[i]
			if i+1 < len(tokens) {
				var field string
				switch tok {
				case "by", "of":
					field = FieldSubjPhrase
				case "to":
					field = FieldObjPhrase
				}
				if field != "" {
					for _, term := range an.Analyze(tok + tokens[i+1]) {
						out = append(out, index.FieldTerm{Field: field, Term: term})
					}
					i++
					continue
				}
			}
			plain = append(plain, tok)
		}
		if len(plain) > 0 {
			addMulti(strings.Join(plain, " "), QueryBoosts)
		}
	default:
		addMulti(query, QueryBoosts)
	}
	return out, true
}

// mayUseAdvancedSyntax is the field-independent superset of
// hasAdvancedSyntax: true whenever ANY index, whatever fields it holds,
// could route the query through the full parser.
func mayUseAdvancedSyntax(query string) bool {
	if strings.Contains(query, `"`) ||
		strings.HasPrefix(query, "+") || strings.HasPrefix(query, "-") ||
		strings.Contains(query, " +") || strings.Contains(query, " -") {
		return true
	}
	for _, tok := range strings.Fields(query) {
		if strings.HasSuffix(tok, "~") {
			return true
		}
		if i := strings.IndexByte(tok, ':'); i > 0 {
			return true
		}
	}
	return false
}
