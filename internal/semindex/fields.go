// Package semindex implements the paper's primary contribution: semantic
// indexing (Section 3.6). Extracted and inferred ontological knowledge is
// flattened into a structured inverted index — one document per soccer
// event, with fields for the event's inferred types, subject and object
// players and teams, inferred player properties, rule-derived knowledge and
// the raw narration — and searched with plain keyword queries under a
// custom field-boosted ranking.
//
// Five index levels reproduce the paper's evaluation ladder:
//
//	TRAD      narrations only (the traditional baseline)
//	BASIC_EXT basic crawl information + narrations
//	FULL_EXT  + extracted events
//	FULL_INF  + inferred knowledge (classification, realization, rules)
//	PHR_EXP   FULL_INF + phrasal subject/object fields (Section 6)
package semindex

import (
	"strings"
	"unicode"

	"repro/internal/index"
)

// Field names of the semantic index (Tables 1 and 2).
const (
	FieldEvent      = "event"
	FieldMatch      = "match"
	FieldTeam1      = "team1"
	FieldTeam2      = "team2"
	FieldDate       = "date"
	FieldMinute     = "minute"
	FieldSubjPlayer = "subjectPlayer"
	FieldSubjTeam   = "subjectTeam"
	FieldObjPlayer  = "objectPlayer"
	FieldObjTeam    = "objectTeam"
	FieldNarration  = "narration"
	FieldSubjProp   = "subjectPlayerProp"
	FieldObjProp    = "objectPlayerProp"
	FieldFromRules  = "fromRules"
	FieldSubjPhrase = "subjectPhrase"
	FieldObjPhrase  = "objectPhrase"
	// Stored-only metadata fields (never indexed; see index.Index.Add).
	MetaMatchID   = "_matchID"
	MetaNarration = "_narrIdx"
	MetaKind      = "_kind"
	MetaMinute    = "_minute"
	MetaSubject   = "_subject"
	MetaObject    = "_object"
	MetaSubjTeam  = "_subjTeam"
	MetaObjTeam   = "_objTeam"
)

// QueryBoosts is the query-time field weighting of Section 3.6.2: the
// event field dominates (it prevents the "Ronaldo misses a goal" false
// positive from outranking real goals), ontological player/team fields
// outweigh free text, and the narration field keeps the traditional-search
// recall floor.
// Subject fields outweigh their object counterparts: a bare keyword query
// cannot say which role it means (the structural ambiguity of Section 6),
// and favoring the subject reading ranks "fouls by Henry" above "fouls on
// Henry" for the query "henry negative moves" — the same subject-first
// preference the paper observes in its FULL_INF ranking.
var QueryBoosts = []index.FieldBoost{
	{Field: FieldEvent, Boost: 4.0},
	{Field: FieldSubjPlayer, Boost: 2.5},
	{Field: FieldObjPlayer, Boost: 1.6},
	{Field: FieldSubjTeam, Boost: 2.2},
	{Field: FieldObjTeam, Boost: 1.2},
	{Field: FieldSubjProp, Boost: 1.8},
	{Field: FieldObjProp, Boost: 1.1},
	{Field: FieldFromRules, Boost: 1.5},
	{Field: FieldNarration, Boost: 1.0},
}

// Context fields (match, team1, team2, date, minute) are indexed for
// programmatic filtering but deliberately not searched by default: every
// event of a Barcelona match would otherwise match the keyword "barcelona"
// through team1/team2, drowning the ontological subjectTeam signal and
// dragging precision below the traditional baseline on queries like Q-9.

// TradBoosts searches only the free-text narration, the traditional
// vector-space baseline.
var TradBoosts = []index.FieldBoost{{Field: FieldNarration, Boost: 1.0}}

// CamelSplit breaks an ontology local name into words for indexing:
// "NegativeEvent" becomes "Negative Event", "YellowCard" "Yellow Card",
// so the keyword query "yellow card" hits the inferred type field. Runs of
// capitals stay together ("UEFA Cup" style names are not produced by the
// soccer ontology, but initialisms survive).
func CamelSplit(s string) string {
	var b strings.Builder
	runes := []rune(s)
	for i, r := range runes {
		if i > 0 && unicode.IsUpper(r) && !unicode.IsUpper(runes[i-1]) {
			b.WriteByte(' ')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// PhrasalTokens builds the subject/object phrase field content of Section
// 6: each word of the player's name prefixed with the preposition, fused
// into a single token ("Daniel Alves" with "by" gives "bydaniel byalves"),
// which keeps the preposition-name pair atomic through the stopword filter.
func PhrasalTokens(preposition, name string) string {
	var b strings.Builder
	for _, w := range index.Tokenize(name) {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(preposition)
		b.WriteString(strings.ToLower(w))
	}
	return b.String()
}
