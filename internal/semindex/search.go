package semindex

import (
	"strings"

	"repro/internal/index"
)

// Hit is one ranked search result with its stored document.
type Hit struct {
	DocID int
	Score float64
	Doc   *index.Document
}

// Search runs a keyword query against the index with the level's ranking:
// TRAD searches only the narration text; the semantic levels search all
// ontological fields under the custom boosts of Section 3.6.2; PHR_EXP
// additionally recognizes the phrasal expressions of Section 6 ("by X",
// "of X", "to X") and routes them to the subject/object phrase fields.
// limit <= 0 returns every match.
//
// The limit is pushed down into the index kernel, not applied as a
// truncation here: a positive limit arms document-at-a-time MaxScore
// pruning (see index.Index.Search), so asking for the top 10 costs far
// less than ranking every match and slicing.
func (s *SemanticIndex) Search(query string, limit int) []Hit {
	queryCounter(s.Level).Inc()
	q := s.buildQuery(query)
	raw := s.Index.Search(q, limit)
	hits := make([]Hit, len(raw))
	for i, h := range raw {
		hits[i] = Hit{DocID: h.DocID, Score: h.Score, Doc: s.Index.Doc(h.DocID)}
	}
	return hits
}

func (s *SemanticIndex) buildQuery(query string) index.Query {
	boosts := QueryBoosts
	if s.Level == Trad {
		boosts = TradBoosts
	}
	// Advanced Lucene-style syntax (quoted phrases, +/- operators, field:
	// prefixes, fuzzy~ terms) routes through the full query parser; plain
	// keyword queries take the level's standard path.
	if s.hasAdvancedSyntax(query) {
		if q, err := index.ParseQuery(query, boosts); err == nil {
			return q
		}
	}
	switch s.Level {
	case Trad:
		return index.MultiFieldQuery(query, TradBoosts)
	case PhrExp:
		return s.phrasalQuery(query)
	default:
		return index.MultiFieldQuery(query, QueryBoosts)
	}
}

// hasAdvancedSyntax reports whether the query uses parser-level operators.
// Punctuation alone is not enough: a ':' only signals field syntax when
// the prefix before it names a field this index actually holds, and a '~'
// only signals a fuzzy term as a token suffix. Otherwise plain keyword
// queries carrying scoreline or time tokens ("2:1 goal", "19:30 kickoff")
// would be parsed as field-prefix queries — the nonexistent field "2"
// matches nothing, its tokens drop out of scoring, and the ranking
// silently changes.
func (s *SemanticIndex) hasAdvancedSyntax(query string) bool {
	if strings.Contains(query, `"`) ||
		strings.HasPrefix(query, "+") || strings.HasPrefix(query, "-") ||
		strings.Contains(query, " +") || strings.Contains(query, " -") {
		return true
	}
	for _, tok := range strings.Fields(query) {
		if strings.HasSuffix(tok, "~") {
			return true
		}
		if i := strings.IndexByte(tok, ':'); i > 0 && s.Index.HasField(tok[:i]) {
			return true
		}
	}
	return false
}

// phrasalQuery splits the query into phrasal pairs and plain tokens.
// "foul by daniel to florent" becomes the plain token "foul" plus the
// fused phrase terms bydaniel (subject field) and toflorent (object
// field). Plain tokens go through the ordinary multi-field path.
func (s *SemanticIndex) phrasalQuery(query string) index.Query {
	tokens := index.Tokenize(strings.ToLower(query))
	var plain []string
	var clauses []index.Query
	for i := 0; i < len(tokens); i++ {
		tok := tokens[i]
		if i+1 < len(tokens) {
			switch tok {
			case "by", "of":
				clauses = append(clauses, index.TermQuery{
					Field: FieldSubjPhrase,
					Term:  tok + tokens[i+1],
					Boost: 6.0,
				})
				i++
				continue
			case "to":
				clauses = append(clauses, index.TermQuery{
					Field: FieldObjPhrase,
					Term:  tok + tokens[i+1],
					Boost: 6.0,
				})
				i++
				continue
			}
		}
		plain = append(plain, tok)
	}
	if len(plain) > 0 {
		clauses = append(clauses, index.MultiFieldQuery(strings.Join(plain, " "), QueryBoosts))
	}
	if len(clauses) == 1 {
		return clauses[0]
	}
	return index.BooleanQuery{Should: clauses, DisableCoord: true}
}

// SearchWithBoosts runs a keyword query under caller-supplied field
// weights instead of the level's defaults — the hook the boost-ablation
// experiment uses to show what the Section 3.6.2 ranking buys.
func (s *SemanticIndex) SearchWithBoosts(query string, limit int, boosts []index.FieldBoost) []Hit {
	raw := s.Index.Search(index.MultiFieldQuery(query, boosts), limit)
	hits := make([]Hit, len(raw))
	for i, h := range raw {
		hits[i] = Hit{DocID: h.DocID, Score: h.Score, Doc: s.Index.Doc(h.DocID)}
	}
	return hits
}

// Meta reads a stored metadata field of a hit document.
func (h Hit) Meta(field string) string {
	if h.Doc == nil {
		return ""
	}
	return h.Doc.Get(field)
}
