package semindex

import (
	"strings"

	"repro/internal/index"
)

// Synonyms is the query-time synonym layer Section 7 sketches ("expanding
// the index terms with WordNet synonyms ... can be achieved easily with
// semantic indexing"). Applied at query time rather than index time, each
// query token expands to a weighted disjunction over its synonym set, so
// folk vocabulary ("keeper", "spot kick", "booking") reaches the
// ontological fields without re-indexing.
type Synonyms map[string][]string

// SoccerSynonyms is a small curated synonym table for the domain, standing
// in for the WordNet synsets the paper references.
var SoccerSynonyms = Synonyms{
	"keeper":     {"goalkeeper"},
	"goalie":     {"goalkeeper"},
	"booking":    {"yellow", "card", "booked"},
	"sending":    {"red", "card"},
	"spot":       {"penalty"},
	"equaliser":  {"goal"},
	"equalizer":  {"goal"},
	"strike":     {"goal", "shot"},
	"netted":     {"scores"},
	"handball":   {"hand", "ball"},
	"defender":   {"defence"},
	"defenders":  {"defence"},
	"infraction": {"foul"},
	"whistle":    {"referee"},
	"sub":        {"substitution"},
	"subbed":     {"substitution", "replaces"},
}

// synonymWeight discounts synonym matches relative to the literal term.
const synonymWeight = 0.7

// SearchWithSynonyms runs a keyword query where every token also matches
// its synonyms at reduced weight, under the index level's standard boosts.
func (s *SemanticIndex) SearchWithSynonyms(query string, limit int, syn Synonyms) []Hit {
	boosts := QueryBoosts
	if s.Level == Trad {
		boosts = TradBoosts
	}
	var should []index.Query
	for _, tok := range index.Tokenize(strings.ToLower(query)) {
		var perToken []index.Query
		for _, fb := range boosts {
			perToken = append(perToken, index.TermQuery{Field: fb.Field, Term: tok, Boost: fb.Boost})
			for _, alt := range syn[tok] {
				perToken = append(perToken, index.TermQuery{
					Field: fb.Field, Term: alt, Boost: fb.Boost * synonymWeight,
				})
			}
		}
		should = append(should, index.BooleanQuery{Should: perToken, DisableCoord: true})
	}
	raw := s.Index.Search(index.BooleanQuery{Should: should}, limit)
	hits := make([]Hit, len(raw))
	for i, h := range raw {
		hits[i] = Hit{DocID: h.DocID, Score: h.Score, Doc: s.Index.Doc(h.DocID)}
	}
	return hits
}
