package semindex

import "sort"

// Facet is one aggregation bucket.
type Facet struct {
	Value string
	Count int
}

// Facets aggregates hit counts over a stored metadata field (event kind,
// match, subject team...), the standard drill-down affordance of a search
// UI: "punishment -> YellowCard (31), RedCard (6), SecondYellowCard (2)".
// Buckets are sorted by descending count, then value.
func Facets(hits []Hit, metaField string) []Facet {
	counts := map[string]int{}
	for _, h := range hits {
		v := h.Meta(metaField)
		if v == "" {
			continue
		}
		counts[v]++
	}
	out := make([]Facet, 0, len(counts))
	for v, c := range counts {
		out = append(out, Facet{Value: v, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Related returns documents similar to the given hit, ranked by shared
// discriminative vocabulary across the ontological fields.
func (s *SemanticIndex) Related(docID int, limit int) []Hit {
	q := s.Index.MoreLikeThis(docID, QueryBoosts, 8)
	if q == nil {
		return nil
	}
	raw := s.Index.Search(q, limit)
	hits := make([]Hit, len(raw))
	for i, h := range raw {
		hits[i] = Hit{DocID: h.DocID, Score: h.Score, Doc: s.Index.Doc(h.DocID)}
	}
	return hits
}
