package semindex

import (
	"strings"
	"testing"
)

func TestSynonymSearchFolkVocabulary(t *testing.T) {
	pages := testPages(t, 2, 42)
	si := NewBuilder().Build(FullInf, pages)

	// "keeper" appears nowhere in the corpus; the synonym layer maps it to
	// "goalkeeper", which the inferred subjectPlayerProp field carries.
	plain := si.Search("keeper save", 0)
	saves := 0
	for _, h := range plain {
		if strings.Contains(h.Meta(MetaKind), "Save") {
			saves++
		}
	}
	syn := si.SearchWithSynonyms("keeper save", 0, SoccerSynonyms)
	if len(syn) == 0 {
		t.Fatal("synonym search found nothing")
	}
	top := syn[0]
	if !strings.Contains(top.Meta(MetaKind), "Save") {
		t.Errorf("top synonym hit kind = %q", top.Meta(MetaKind))
	}
	// The synonym ranking must place the keeper's saves above whatever the
	// literal query could reach through "save" alone; verify the top hit's
	// subject is actually a goalkeeper-typed player.
	if !strings.Contains(top.Doc.Get(FieldSubjProp), "Goalkeeper") {
		t.Errorf("top hit subject props = %q", top.Doc.Get(FieldSubjProp))
	}
}

func TestSynonymSearchBooking(t *testing.T) {
	pages := testPages(t, 2, 42)
	si := NewBuilder().Build(FullInf, pages)
	hits := si.SearchWithSynonyms("booking", 5, SoccerSynonyms)
	if len(hits) == 0 {
		t.Fatal("no hits for booking")
	}
	if !strings.Contains(hits[0].Meta(MetaKind), "Yellow") {
		t.Errorf("top booking hit = %q", hits[0].Meta(MetaKind))
	}
}

func TestSynonymSearchWithoutTableEqualsPlain(t *testing.T) {
	pages := testPages(t, 1, 42)
	si := NewBuilder().Build(FullInf, pages)
	a := si.Search("goal", 10)
	b := si.SearchWithSynonyms("goal", 10, nil)
	if len(a) != len(b) {
		t.Fatalf("%d vs %d hits", len(a), len(b))
	}
	for i := range a {
		if a[i].DocID != b[i].DocID {
			t.Errorf("rank %d: %d vs %d", i, a[i].DocID, b[i].DocID)
		}
	}
}

func TestSynonymWeightDiscount(t *testing.T) {
	pages := testPages(t, 1, 42)
	si := NewBuilder().Build(FullInf, pages)
	// "goalie" appears nowhere in the corpus text, so its score comes
	// purely from the discounted synonym clause; "goalkeeper" is literal.
	literal := si.SearchWithSynonyms("goalkeeper", 1, SoccerSynonyms)
	viaSyn := si.SearchWithSynonyms("goalie", 1, SoccerSynonyms)
	if len(literal) == 0 || len(viaSyn) == 0 {
		t.Skip("no goalkeeper docs")
	}
	if viaSyn[0].Score >= literal[0].Score {
		t.Errorf("synonym match %f not discounted vs literal %f", viaSyn[0].Score, literal[0].Score)
	}
}

func TestSuggestCorrectsMisspelledName(t *testing.T) {
	pages := testPages(t, 2, 42)
	si := NewBuilder().Build(FullInf, pages)
	got := si.Suggest("mesi goal")
	if !strings.Contains(got, "goal") || got == "" {
		t.Fatalf("Suggest = %q", got)
	}
	// The suggested first token must now match the index ("messi" stems to
	// the vocabulary term).
	if !strings.HasPrefix(got, "messi") {
		t.Errorf("Suggest = %q, want messi correction", got)
	}
}

func TestSuggestNoChangeNeeded(t *testing.T) {
	pages := testPages(t, 1, 42)
	si := NewBuilder().Build(FullInf, pages)
	if got := si.Suggest("messi goal"); got != "" {
		t.Errorf("Suggest on valid query = %q", got)
	}
	// Hopeless garbage with no near neighbour yields no suggestion.
	if got := si.Suggest("qzxv"); got != "" {
		t.Errorf("Suggest on garbage = %q", got)
	}
	// Stopwords alone need no correction.
	if got := si.Suggest("the of"); got != "" {
		t.Errorf("Suggest on stopwords = %q", got)
	}
}
