package semindex

import (
	"strings"

	"repro/internal/index"
)

// Suggest proposes a corrected query when some token matches nothing in
// any searched field but has a close neighbour (edit distance 1) in the
// index vocabulary — the "did you mean" affordance keyword interfaces need
// for misspelled player names. It returns "" when the query needs no
// correction or none can be found.
func (s *SemanticIndex) Suggest(query string) string {
	boosts := QueryBoosts
	if s.Level == Trad {
		boosts = TradBoosts
	}
	tokens := index.Tokenize(strings.ToLower(query))
	corrected := make([]string, len(tokens))
	changed := false
	for i, tok := range tokens {
		corrected[i] = tok
		if s.tokenMatches(tok, boosts) {
			continue
		}
		if alt := s.nearestTerm(tok, boosts); alt != "" {
			corrected[i] = alt
			changed = true
		}
	}
	if !changed {
		return ""
	}
	return strings.Join(corrected, " ")
}

// tokenMatches reports whether the analyzed token has postings in any
// searched field.
func (s *SemanticIndex) tokenMatches(tok string, boosts []index.FieldBoost) bool {
	analyzed := s.Index.Analyzer().Analyze(tok)
	if len(analyzed) == 0 {
		return true // pure stopword: nothing to correct
	}
	for _, fb := range boosts {
		if s.Index.DocFreq(fb.Field, analyzed[0]) > 0 {
			return true
		}
	}
	return false
}

// nearestTerm finds the highest-df vocabulary term within edit distance 1
// of the token, searching the subject/object player fields first (names
// are where typos happen) and then the remaining fields.
func (s *SemanticIndex) nearestTerm(tok string, boosts []index.FieldBoost) string {
	analyzed := s.Index.Analyzer().Analyze(tok)
	if len(analyzed) == 0 {
		return ""
	}
	target := analyzed[0]
	best := ""
	bestDF := 0
	for _, fb := range boosts {
		for _, term := range s.Index.Terms(fb.Field) {
			if term == target {
				continue
			}
			if !index.WithinEditDistance1(term, target) {
				continue
			}
			df := s.Index.DocFreq(fb.Field, term)
			if df > bestDF {
				bestDF = df
				best = term
			}
		}
	}
	return best
}
