package semindex

import (
	"strings"

	"repro/internal/index"
)

// Suggest proposes a corrected query when some token matches nothing in
// any searched field but has a close neighbour (edit distance 1) in the
// index vocabulary — the "did you mean" affordance keyword interfaces need
// for misspelled player names. It returns "" when the query needs no
// correction or none can be found.
func (s *SemanticIndex) Suggest(query string) string {
	boosts := QueryBoosts
	if s.Level == Trad {
		boosts = TradBoosts
	}
	return CorrectQuery(s.Index.Analyzer(), boosts, query, s.Index.DocFreq, s.Index.Terms)
}

// CorrectQuery is the spelling-correction core shared by the monolithic
// index and the sharded engine, parameterized by where the vocabulary
// lives: docFreq reports a term's document frequency in a field and terms
// lists a field's dictionary in ascending order. The monolith passes its
// local index; the engine passes the exchanged corpus-wide statistics, so
// both produce identical corrections for identical vocabularies — a
// guarantee TestSuggestEquivalence holds the two callers to.
//
// A token is corrected when its analyzed form has no postings in any
// searched field; the replacement is the highest-df term within edit
// distance 1, scanning fields in boost order and terms in lexicographic
// order with strictly-greater df wins, which fixes the tie-breaks.
func CorrectQuery(a index.Analyzer, boosts []index.FieldBoost, query string,
	docFreq func(field, term string) int, terms func(field string) []string) string {
	tokens := index.Tokenize(strings.ToLower(query))
	corrected := make([]string, len(tokens))
	changed := false
	for i, tok := range tokens {
		corrected[i] = tok
		analyzed := a.Analyze(tok)
		if len(analyzed) == 0 {
			continue // pure stopword: nothing to correct
		}
		target := analyzed[0]
		matches := false
		for _, fb := range boosts {
			if docFreq(fb.Field, target) > 0 {
				matches = true
				break
			}
		}
		if matches {
			continue
		}
		if alt := nearestTerm(target, boosts, docFreq, terms); alt != "" {
			corrected[i] = alt
			changed = true
		}
	}
	if !changed {
		return ""
	}
	return strings.Join(corrected, " ")
}

// nearestTerm finds the highest-df vocabulary term within edit distance 1
// of the analyzed target, scanning the subject/object player fields first
// (names are where typos happen) and then the remaining fields.
func nearestTerm(target string, boosts []index.FieldBoost,
	docFreq func(field, term string) int, terms func(field string) []string) string {
	best := ""
	bestDF := 0
	for _, fb := range boosts {
		for _, term := range terms(fb.Field) {
			if term == target || !index.WithinEditDistance1(term, target) {
				continue
			}
			if df := docFreq(fb.Field, term); df > bestDF {
				bestDF = df
				best = term
			}
		}
	}
	return best
}
