package semindex

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	pages := testPages(t, 2, 42)
	si := NewBuilder().Build(FullInf, pages)

	var buf bytes.Buffer
	if err := si.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.Level != FullInf {
		t.Errorf("level = %s", back.Level)
	}
	if back.Index.NumDocs() != si.Index.NumDocs() {
		t.Fatalf("docs %d != %d", back.Index.NumDocs(), si.Index.NumDocs())
	}
	for _, q := range []string{"goal", "punishment", "henry negative moves"} {
		a := si.Search(q, 10)
		b := back.Search(q, 10)
		if len(a) != len(b) {
			t.Fatalf("query %q: %d vs %d hits", q, len(a), len(b))
		}
		for i := range a {
			if a[i].DocID != b[i].DocID {
				t.Errorf("query %q rank %d: doc %d vs %d", q, i, a[i].DocID, b[i].DocID)
			}
		}
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad header":    "NOTANINDEX\n",
		"bad level":     "SEMIDX BOGUS\n",
		"missing body":  "SEMIDX FULL_INF\n",
		"header fields": "SEMIDX\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(src), nil); err == nil {
				t.Error("Load accepted invalid input")
			}
		})
	}
}

func TestEventTranslations(t *testing.T) {
	pages := testPages(t, 2, 42)
	b := NewBuilder()
	b.EventTranslations = map[string]string{"Goal": "Gol", "Foul": "Faul"}
	si := b.Build(FullInf, pages)

	turkish := si.Search("gol", 0)
	if len(turkish) == 0 {
		t.Fatal("Turkish query found nothing on the bilingual index")
	}
	for _, h := range turkish {
		kind := h.Meta(MetaKind)
		if !strings.Contains(kind, "Goal") {
			t.Errorf("'gol' matched non-goal kind %q", kind)
		}
	}
	english := si.Search("goal", 0)
	if len(english) < len(turkish) {
		t.Errorf("English query weaker than Turkish: %d vs %d", len(english), len(turkish))
	}
	// The monolingual baseline cannot answer the Turkish query.
	mono := NewBuilder().Build(FullInf, pages)
	if got := mono.Search("gol", 0); len(got) != 0 {
		t.Errorf("monolingual index answered Turkish query: %d hits", len(got))
	}
}
