package semindex

import "repro/internal/obs"

// queryCounts holds one obs.Default counter per semantic level,
// pre-registered at init so semindex_queries_total appears on /metrics
// (with zero values) before the first query. Counters count index-level
// query evaluations: a sharded engine fanning one user query out to N
// shards increments its level's counter N times.
var queryCounts = func() map[Level]*obs.Counter {
	obs.Default.Help("semindex_queries_total",
		"Keyword query evaluations per semantic index level.")
	m := make(map[Level]*obs.Counter, len(Levels))
	for _, l := range Levels {
		m[l] = obs.Default.Counter("semindex_queries_total", obs.L("level", string(l)))
	}
	return m
}()

// queryCounter returns the level's counter (nil — a no-op — for levels
// outside the evaluation ladder, e.g. hand-built test indices).
func queryCounter(l Level) *obs.Counter { return queryCounts[l] }
