package semindex

import (
	"strings"
	"testing"
)

func TestFacetsByKind(t *testing.T) {
	pages := testPages(t, 2, 42)
	si := NewBuilder().Build(FullInf, pages)
	hits := si.Search("punishment", 0)
	facets := Facets(hits, MetaKind)
	if len(facets) == 0 {
		t.Fatal("no facets")
	}
	total := 0
	for _, f := range facets {
		total += f.Count
		if !strings.Contains(f.Value, "Card") {
			t.Errorf("punishment facet %q", f.Value)
		}
	}
	if total != len(hits) {
		t.Errorf("facet counts %d != hits %d", total, len(hits))
	}
	// Sorted by descending count.
	for i := 1; i < len(facets); i++ {
		if facets[i].Count > facets[i-1].Count {
			t.Error("facets unsorted")
		}
	}
}

func TestFacetsByTeam(t *testing.T) {
	pages := testPages(t, 2, 42)
	si := NewBuilder().Build(FullInf, pages)
	hits := si.Search("foul", 0)
	facets := Facets(hits, MetaSubjTeam)
	if len(facets) < 2 {
		t.Errorf("team facets = %v", facets)
	}
}

func TestRelatedEvents(t *testing.T) {
	pages := testPages(t, 2, 42)
	si := NewBuilder().Build(FullInf, pages)

	// Pick a yellow card document; its related events should be dominated
	// by other negative/card events, not corners.
	source := -1
	for id := 0; id < si.Index.NumDocs(); id++ {
		if si.Index.Doc(id).Get(MetaKind) == "YellowCard" {
			source = id
			break
		}
	}
	if source < 0 {
		t.Skip("no yellow card in corpus")
	}
	related := si.Related(source, 5)
	if len(related) == 0 {
		t.Fatal("no related events")
	}
	for _, h := range related {
		if h.DocID == source {
			t.Error("source document in its own related list")
		}
	}
	// The top related doc should share the card/punishment vocabulary.
	topKind := related[0].Meta(MetaKind)
	if !strings.Contains(topKind, "Card") && !strings.Contains(topKind, "Foul") {
		t.Errorf("top related kind = %q", topKind)
	}
}

func TestRelatedBounds(t *testing.T) {
	pages := testPages(t, 1, 42)
	si := NewBuilder().Build(FullInf, pages)
	if got := si.Related(-1, 5); got != nil {
		t.Error("negative docID returned results")
	}
	if got := si.Related(1<<30, 5); got != nil {
		t.Error("out-of-range docID returned results")
	}
}
