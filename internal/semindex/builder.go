package semindex

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/crawler"
	"repro/internal/ie"
	"repro/internal/index"
	"repro/internal/inference"
	"repro/internal/owl"
	"repro/internal/populate"
	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/rules"
	"repro/internal/soccer"
)

// Level selects how much semantic processing goes into an index, matching
// the evaluation ladder of Section 4.
type Level string

// The five index levels.
const (
	Trad     Level = "TRAD"
	BasicExt Level = "BASIC_EXT"
	FullExt  Level = "FULL_EXT"
	FullInf  Level = "FULL_INF"
	PhrExp   Level = "PHR_EXP"
)

// Levels lists all levels in evaluation order.
var Levels = []Level{Trad, BasicExt, FullExt, FullInf, PhrExp}

// SemanticIndex is a built index of one level.
type SemanticIndex struct {
	Level Level
	Index *index.Index
}

// Builder constructs semantic indices from crawled pages. The zero value
// is not usable; construct with NewBuilder.
type Builder struct {
	Ontology *owl.Ontology
	Reasoner *reasoner.Reasoner
	Rules    []*rules.Rule
	// Analyzer overrides the index analyzer (nil = StandardAnalyzer), used
	// by the stemming ablation.
	Analyzer index.Analyzer
	// DisableNarrationField drops the full-text field, for the recall-floor
	// ablation.
	DisableNarrationField bool
	// EventTranslations maps ontology class local names to a second-language
	// value appended next to the original in the event field — the paper's
	// Section 7 multilinguality recipe ("as easy as adding the translated
	// value next to its original value for each field").
	EventTranslations map[string]string
	// Parallelism bounds the worker pool preparing per-match documents
	// (extraction, population and inference are independent per game —
	// the same property that makes the paper's per-match models scale).
	// 0 means GOMAXPROCS capped at 8; 1 disables concurrency.
	Parallelism int
}

// NewBuilder wires the default soccer pipeline.
func NewBuilder() *Builder {
	ont := soccer.BuildOntology()
	return &Builder{
		Ontology: ont,
		Reasoner: reasoner.New(ont),
		Rules:    soccer.Rules(),
	}
}

// Build constructs the index at the given level from crawled match pages.
// Per-match document preparation (extraction, population, inference) runs
// on a worker pool; documents are committed to the index in page order so
// docIDs — and therefore search tie-breaks — stay deterministic.
func (b *Builder) Build(level Level, pages []*crawler.MatchPage) *SemanticIndex {
	ix := index.New(b.Analyzer)
	si := &SemanticIndex{Level: level, Index: ix}

	workers := b.Parallelism
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	if workers <= 1 || len(pages) < 2 {
		for _, page := range pages {
			for _, d := range b.pageDocuments(level, page) {
				ix.Add(d)
			}
		}
		return si
	}

	docsByPage := make([][]*index.Document, len(pages))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, page := range pages {
		wg.Add(1)
		go func(i int, page *crawler.MatchPage) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			docsByPage[i] = b.pageDocuments(level, page)
		}(i, page)
	}
	wg.Wait()
	for _, docs := range docsByPage {
		for _, d := range docs {
			ix.Add(d)
		}
	}
	return si
}

// PageDocuments prepares one match's documents without committing them to
// any index — the hook the sharded engine (internal/shard) uses to own
// commit order, document identity and shard placement itself. Safe to call
// concurrently for different pages.
func (b *Builder) PageDocuments(level Level, page *crawler.MatchPage) []*index.Document {
	return b.pageDocuments(level, page)
}

// pageDocuments prepares one match's documents without touching the index.
func (b *Builder) pageDocuments(level Level, page *crawler.MatchPage) []*index.Document {
	if level == Trad {
		return b.tradDocs(page)
	}
	return b.semanticDocs(level, page)
}

// AddPage indexes one additional match into an existing index — the
// incremental-update path behind the paper's Section 7 flexibility claim:
// the semantic index absorbs new data without touching the ontology layer
// or rebuilding from scratch.
func (b *Builder) AddPage(si *SemanticIndex, page *crawler.MatchPage) {
	for _, d := range b.pageDocuments(si.Level, page) {
		si.Index.Add(d)
	}
}

// tradDocs prepares each narration as a bare full-text document — the
// traditional vector-space baseline.
func (b *Builder) tradDocs(page *crawler.MatchPage) []*index.Document {
	out := make([]*index.Document, 0, len(page.Narrations))
	for i, n := range page.Narrations {
		d := &index.Document{}
		d.Add(FieldNarration, n.Text)
		d.Add(MetaMatchID, page.ID)
		d.Add(MetaNarration, fmt.Sprintf("%d", i))
		d.Add(MetaMinute, fmt.Sprintf("%d", n.Minute))
		out = append(out, d)
	}
	return out
}

func (b *Builder) semanticDocs(level Level, page *crawler.MatchPage) []*index.Document {
	var out []*index.Document
	events := ie.Extractor{}.ExtractMatch(page)
	if level == BasicExt {
		// The initial OWL files of pipeline step 3 know the narrations but
		// not the extracted events: degrade every extraction to Unknown,
		// keeping only the text.
		for i := range events {
			events[i] = ie.Event{
				Kind:         soccer.KindUnknown,
				Minute:       events[i].Minute,
				NarrationIdx: events[i].NarrationIdx,
				Narration:    events[i].Narration,
			}
		}
	}
	pop := &populate.Populator{Ontology: b.Ontology}
	pm := pop.Populate(page, events)

	model := pm.Model
	var provenance map[rdf.Triple]string
	if level == FullInf || level == PhrExp {
		res := inference.Run(b.Reasoner, b.Rules, model)
		model = res.Model
		provenance = res.RuleProvenance
	}

	for _, rec := range pm.Events {
		out = append(out, b.eventDocument(level, page, model, provenance, rec))
	}
	if level == FullInf || level == PhrExp {
		// Rule-minted individuals (the Fig. 6 assists) are not in
		// pm.Events; index them too.
		known := map[rdf.Term]bool{}
		for _, rec := range pm.Events {
			known[rec.Individual] = true
		}
		for _, ind := range model.Graph.Subjects(rdf.RDFType, b.Ontology.IRI("Event")) {
			if known[ind] {
				continue
			}
			rec := populate.EventRecord{Individual: ind, Kind: ruleKind(b, model, ind), NarrationIdx: -1}
			if min, ok := model.Get(ind, "inMinute").Int(); ok {
				rec.Minute = min
			}
			out = append(out, b.eventDocument(level, page, model, provenance, rec))
		}
	}
	return out
}

// ruleKind picks the most specific type of a rule-minted individual.
func ruleKind(b *Builder, m *owl.Model, ind rdf.Term) soccer.EventKind {
	direct := b.Reasoner.DirectTypes(m, ind)
	if len(direct) > 0 {
		return soccer.EventKind(direct[0].LocalName())
	}
	return soccer.KindUnknown
}

// eventDocument flattens one event individual into an index document
// following the structure of Tables 1 and 2.
func (b *Builder) eventDocument(level Level, page *crawler.MatchPage, m *owl.Model,
	provenance map[rdf.Triple]string, rec populate.EventRecord) *index.Document {

	d := &index.Document{}
	ind := rec.Individual

	// Event types: asserted for EXT levels, full closure for INF levels.
	var typeNames []string
	for _, t := range m.Types(ind) {
		name := t.LocalName()
		if !strings.HasPrefix(t.Value, rdf.NSSoccer) {
			continue
		}
		typeNames = append(typeNames, CamelSplit(name))
		if tr := b.EventTranslations[name]; tr != "" {
			typeNames = append(typeNames, tr)
		}
	}
	d.Add(FieldEvent, strings.Join(typeNames, " "))

	d.Add(FieldMatch, page.ID)
	d.Add(FieldTeam1, page.Home)
	d.Add(FieldTeam2, page.Away)
	d.Add(FieldDate, page.Date)
	d.Add(FieldMinute, fmt.Sprintf("%d", rec.Minute))

	subjects := b.roleValues(m, ind, "subjectPlayer")
	objects := b.roleValues(m, ind, "objectPlayer")
	subjTeams := b.roleValues(m, ind, "subjectTeam")
	objTeams := b.roleValues(m, ind, "objectTeam")
	d.Add(FieldSubjPlayer, strings.Join(displayNames(m, subjects), " "))
	d.Add(FieldObjPlayer, strings.Join(displayNames(m, objects), " "))
	d.Add(FieldSubjTeam, strings.Join(displayNames(m, subjTeams), " "))
	d.Add(FieldObjTeam, strings.Join(displayNames(m, objTeams), " "))

	if !b.DisableNarrationField {
		d.Add(FieldNarration, m.Get(ind, "narration").Value)
	}

	if level == FullInf || level == PhrExp {
		d.Add(FieldSubjProp, b.playerPropText(m, subjects))
		d.Add(FieldObjProp, b.playerPropText(m, objects))
		d.Add(FieldFromRules, b.fromRulesText(m, provenance, ind))
	}
	if level == PhrExp {
		var subjPhr, objPhr []string
		for _, n := range displayNames(m, subjects) {
			subjPhr = append(subjPhr, PhrasalTokens("by", n), PhrasalTokens("of", n))
		}
		for _, n := range displayNames(m, objects) {
			objPhr = append(objPhr, PhrasalTokens("to", n))
		}
		d.Add(FieldSubjPhrase, strings.Join(subjPhr, " "))
		d.Add(FieldObjPhrase, strings.Join(objPhr, " "))
	}

	// Stored-only evaluation metadata.
	d.Add(MetaMatchID, page.ID)
	d.Add(MetaNarration, fmt.Sprintf("%d", rec.NarrationIdx))
	d.Add(MetaKind, string(rec.Kind))
	d.Add(MetaMinute, fmt.Sprintf("%d", rec.Minute))
	d.Add(MetaSubject, strings.Join(displayNames(m, subjects), "|"))
	d.Add(MetaObject, strings.Join(displayNames(m, objects), "|"))
	d.Add(MetaSubjTeam, strings.Join(displayNames(m, subjTeams), "|"))
	d.Add(MetaObjTeam, strings.Join(displayNames(m, objTeams), "|"))
	return d
}

// roleValues collects the values of a generic property and all its
// sub-properties on the individual. Reading through the property hierarchy
// is TBox knowledge (the index schema), not ABox inference, which is why
// the pre-inference FULL_EXT index still fills subjectPlayer from
// scorerPlayer assertions — exactly the paper's Table 1.
func (b *Builder) roleValues(m *owl.Model, ind rdf.Term, generic string) []rdf.Term {
	seen := map[rdf.Term]bool{}
	var out []rdf.Term
	genericIRI := b.Ontology.IRI(generic)
	for _, p := range b.Ontology.Properties() {
		if p.IRI != genericIRI && !hasAncestor(b.Reasoner.PropertyAncestors(p.IRI), genericIRI) {
			continue
		}
		for _, v := range m.Graph.Objects(ind, p.IRI) {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	rdf.SortTerms(out)
	return out
}

func hasAncestor(ancestors []rdf.Term, t rdf.Term) bool {
	for _, a := range ancestors {
		if a == t {
			return true
		}
	}
	return false
}

// displayNames maps individuals to their hasName values (falling back to
// the IRI local name with underscores opened up).
func displayNames(m *owl.Model, inds []rdf.Term) []string {
	out := make([]string, 0, len(inds))
	for _, ind := range inds {
		if n := m.Get(ind, "hasName"); !n.IsZero() {
			out = append(out, n.Value)
			continue
		}
		out = append(out, strings.ReplaceAll(ind.LocalName(), "_", " "))
	}
	return out
}

// playerPropText renders the inferred types of the given players, the
// subjectPlayerProp/objectPlayerProp content of Table 2 ("Left back
// defence player ...").
func (b *Builder) playerPropText(m *owl.Model, players []rdf.Term) string {
	var parts []string
	seen := map[string]bool{}
	for _, p := range players {
		for _, t := range m.Types(p) {
			if !strings.HasPrefix(t.Value, rdf.NSSoccer) {
				continue
			}
			s := CamelSplit(t.LocalName())
			if !seen[s] {
				seen[s] = true
				parts = append(parts, s)
			}
		}
	}
	return strings.Join(parts, " ")
}

// fromRulesText renders rule-derived knowledge about the event: properties
// asserted on it by rules (with the value's display name) and inverse
// actor properties pointing at it, camel-split so "actorOfNegativeMove"
// surfaces the query tokens "negative move".
func (b *Builder) fromRulesText(m *owl.Model, provenance map[rdf.Triple]string, ind rdf.Term) string {
	if provenance == nil {
		return ""
	}
	var parts []string
	seen := map[string]bool{}
	addPart := func(s string) {
		if s != "" && !seen[s] {
			seen[s] = true
			parts = append(parts, s)
		}
	}
	roleAncestors := []rdf.Term{
		b.Ontology.IRI("subjectPlayer"), b.Ontology.IRI("objectPlayer"),
		b.Ontology.IRI("subjectTeam"), b.Ontology.IRI("objectTeam"),
	}
	for _, t := range m.Graph.Match(ind, rdf.Wildcard, rdf.Wildcard) {
		if _, ok := provenance[t]; !ok {
			continue
		}
		// Values of role properties (concedingTeam, scoredToGoalkeeper, ...)
		// already reach the index through the four role fields; repeating
		// them here would double-count team and player mentions. Likewise
		// skip plumbing (inMatch, inMinute) and unnamed individuals such as
		// the goal an assist points at, whose local name would leak "goal".
		if t.O.IsIRI() && m.Get(t.O, "hasName").IsZero() {
			continue
		}
		skip := t.P == b.Ontology.IRI("inMatch") || t.P == b.Ontology.IRI("inMinute")
		for _, anc := range roleAncestors {
			if t.P == anc || hasAncestor(b.Reasoner.PropertyAncestors(t.P), anc) {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		addPart(CamelSplit(t.P.LocalName()))
		if t.O.IsIRI() {
			addPart(m.Get(t.O, "hasName").Value)
		}
	}
	for _, t := range m.Graph.Match(rdf.Wildcard, rdf.Wildcard, ind) {
		if _, ok := provenance[t]; !ok {
			// Property-closure lifts of rule triples (actorOfRedCard ->
			// actorOfNegativeMove) come from the reasoner, not the rule
			// engine; include them when the base actor triple is rule-made.
			if !strings.HasPrefix(t.P.Value, rdf.NSSoccer+"actorOf") {
				continue
			}
		}
		if strings.HasPrefix(t.P.Value, rdf.NSSoccer+"actorOf") {
			addPart(CamelSplit(strings.TrimPrefix(t.P.LocalName(), "actorOf")))
		}
	}
	return strings.Join(parts, " ")
}
