package semindex

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"

	"repro/internal/index"
)

// Save writes the semantic index (level header + inverted index) so the
// offline pipeline can build once and serve from a file — the deployment
// shape the paper's scalability argument implies.
func (s *SemanticIndex) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "SEMIDX %s\n", s.Level); err != nil {
		return err
	}
	if err := s.Index.Encode(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// SaveWithTOC writes exactly the bytes Save writes while additionally
// returning the serialized mapped table of contents for the payload (see
// index.EncodeWithTOC) — what the shard envelope stores as its metadata
// region so a later open can serve the file without decoding it.
// metaFields lists stored-only fields whose values the TOC captures for
// decode-free access (the shard layer's identity fields).
func (s *SemanticIndex) SaveWithTOC(w io.Writer, metaFields ...string) ([]byte, error) {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "SEMIDX %s\n", s.Level); err != nil {
		return nil, err
	}
	toc, err := s.Index.EncodeWithTOC(bw, metaFields...)
	if err != nil {
		return nil, err
	}
	return toc, bw.Flush()
}

// OpenMapped serves an index directly from the payload bytes Save (or
// SaveWithTOC) wrote, using the TOC recorded alongside: the level header
// is parsed in place and the codec stream behind it becomes an
// index.OpenMapped region — no decoding, no copies. The caller owns the
// byte slices' lifetime (typically an mmap) and their integrity (the
// shard envelope checksums both). A payload without a usable TOC fails
// with index.ErrNoTOC so callers can fall back to Load.
func OpenMapped(payload, toc []byte, analyzer index.Analyzer) (*SemanticIndex, error) {
	nl := bytes.IndexByte(payload, '\n')
	if nl < 0 || nl > 64 {
		return nil, fmt.Errorf("semindex: bad header in mapped payload")
	}
	parts := strings.Fields(string(payload[:nl]))
	if len(parts) != 2 || parts[0] != "SEMIDX" {
		return nil, fmt.Errorf("semindex: bad header %q", payload[:nl])
	}
	level := Level(parts[1])
	valid := false
	for _, l := range Levels {
		if l == level {
			valid = true
		}
	}
	if !valid {
		return nil, fmt.Errorf("semindex: unknown level %q", level)
	}
	ix, err := index.OpenMapped(payload[nl+1:], toc, analyzer)
	if err != nil {
		return nil, err
	}
	return &SemanticIndex{Level: level, Index: ix}, nil
}

// Load reads an index written by Save. The analyzer must match the one
// used at build time (nil = StandardAnalyzer, the pipeline default).
func Load(r io.Reader, analyzer index.Analyzer) (*SemanticIndex, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("semindex: reading header: %w", err)
	}
	parts := strings.Fields(strings.TrimSpace(header))
	if len(parts) != 2 || parts[0] != "SEMIDX" {
		return nil, fmt.Errorf("semindex: bad header %q", header)
	}
	level := Level(parts[1])
	valid := false
	for _, l := range Levels {
		if l == level {
			valid = true
		}
	}
	if !valid {
		return nil, fmt.Errorf("semindex: unknown level %q", level)
	}
	ix, err := index.Decode(br, analyzer)
	if err != nil {
		return nil, err
	}
	return &SemanticIndex{Level: level, Index: ix}, nil
}
