package semindex

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/index"
)

// Save writes the semantic index (level header + inverted index) so the
// offline pipeline can build once and serve from a file — the deployment
// shape the paper's scalability argument implies.
func (s *SemanticIndex) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "SEMIDX %s\n", s.Level); err != nil {
		return err
	}
	if err := s.Index.Encode(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads an index written by Save. The analyzer must match the one
// used at build time (nil = StandardAnalyzer, the pipeline default).
func Load(r io.Reader, analyzer index.Analyzer) (*SemanticIndex, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("semindex: reading header: %w", err)
	}
	parts := strings.Fields(strings.TrimSpace(header))
	if len(parts) != 2 || parts[0] != "SEMIDX" {
		return nil, fmt.Errorf("semindex: bad header %q", header)
	}
	level := Level(parts[1])
	valid := false
	for _, l := range Levels {
		if l == level {
			valid = true
		}
	}
	if !valid {
		return nil, fmt.Errorf("semindex: unknown level %q", level)
	}
	ix, err := index.Decode(br, analyzer)
	if err != nil {
		return nil, err
	}
	return &SemanticIndex{Level: level, Index: ix}, nil
}
