package semindex

import (
	"testing"

	"repro/internal/index"
)

// TestAdvancedSyntaxDetection pins the query-router decision: field syntax
// is only field syntax when the prefix names a real indexed field, and a
// tilde is only fuzzy syntax as a token suffix.
func TestAdvancedSyntaxDetection(t *testing.T) {
	si := NewBuilder().Build(FullInf, testPages(t, 2, 7))
	advanced := []string{
		`"yellow card"`, // quoted phrase
		"+messi goal",   // required term
		"goal -ronaldo", // excluded term
		"mesi~ goal",    // fuzzy suffix
		"event:goal",    // real field prefix
		"minute:15",     // context fields are indexed too
	}
	plain := []string{
		"messi barcelona goal",
		"2:1 goal",        // scoreline, "2" is not a field
		"19:30 kickoff",   // time token
		"score was 2:1",   // mid-query scoreline
		"half:time recap", // alphabetic prefix that is still not a field
	}
	for _, q := range advanced {
		if !si.hasAdvancedSyntax(q) {
			t.Errorf("hasAdvancedSyntax(%q) = false, want true", q)
		}
	}
	for _, q := range plain {
		if si.hasAdvancedSyntax(q) {
			t.Errorf("hasAdvancedSyntax(%q) = true, want false", q)
		}
	}
}

// TestScorelineQueryKeepsKeywordRanking is the ranking regression: a plain
// keyword query carrying a colon token must rank exactly like the same
// query with the punctuation tokenized away. On the seed code "2:1 goal"
// was routed to the field-prefix parser, the nonexistent field "2"
// swallowed the token, and the ranking silently changed.
func TestScorelineQueryKeepsKeywordRanking(t *testing.T) {
	si := NewBuilder().Build(FullInf, testPages(t, 2, 7))
	for _, tc := range [][2]string{
		{"2:1 goal", "2 1 goal"},
		{"19:30 kickoff goal", "19 30 kickoff goal"},
	} {
		got := si.Search(tc[0], 10)
		want := si.Search(tc[1], 10)
		if len(got) != len(want) {
			t.Fatalf("%q: %d hits, %q: %d hits", tc[0], len(got), tc[1], len(want))
		}
		if len(want) == 0 {
			t.Fatalf("%q: fixture returned no hits; query too narrow", tc[1])
		}
		for i := range want {
			if got[i].DocID != want[i].DocID || got[i].Score != want[i].Score {
				t.Errorf("%q rank %d: (doc %d, %v), want (doc %d, %v)",
					tc[0], i+1, got[i].DocID, got[i].Score, want[i].DocID, want[i].Score)
			}
		}
	}
}

// TestFieldPrefixStillRoutesToParser: real field syntax must keep working
// — event:goal restricts matches to the event field.
func TestFieldPrefixStillRoutesToParser(t *testing.T) {
	si := NewBuilder().Build(FullInf, testPages(t, 2, 7))
	hits := si.Search("event:goal", 0)
	if len(hits) == 0 {
		t.Fatal("event:goal found nothing")
	}
	// Every hit must actually carry the term in its event field; a keyword
	// fallback would also surface narration-only matches.
	q := index.TermQuery{Field: FieldEvent, Term: "goal"}
	fielded := si.Index.Search(q, 0)
	if len(hits) != len(fielded) {
		t.Errorf("event:goal gave %d hits, field query %d", len(hits), len(fielded))
	}
}
