package semindex

import (
	"strings"
	"testing"

	"repro/internal/crawler"
	"repro/internal/soccer"
)

func testPages(t testing.TB, matches int, seed int64) []*crawler.MatchPage {
	t.Helper()
	c := soccer.Generate(soccer.Config{Matches: matches, Seed: seed, NarrationsPerMatch: 60, PaperCoverage: matches >= 2})
	return crawler.PagesFromCorpus(c)
}

func TestCamelSplit(t *testing.T) {
	cases := map[string]string{
		"NegativeEvent":    "Negative Event",
		"YellowCard":       "Yellow Card",
		"SecondYellowCard": "Second Yellow Card",
		"Goal":             "Goal",
		"actorOfMove":      "actor Of Move",
		"":                 "",
	}
	for in, want := range cases {
		if got := CamelSplit(in); got != want {
			t.Errorf("CamelSplit(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPhrasalTokens(t *testing.T) {
	if got := PhrasalTokens("by", "Daniel Alves"); got != "bydaniel byalves" {
		t.Errorf("PhrasalTokens = %q", got)
	}
	if got := PhrasalTokens("to", "Eto'o"); got != "toeto'o" {
		t.Errorf("PhrasalTokens = %q", got)
	}
	if got := PhrasalTokens("of", ""); got != "" {
		t.Errorf("PhrasalTokens empty name = %q", got)
	}
}

func TestBuildTradIndexShape(t *testing.T) {
	pages := testPages(t, 1, 5)
	si := NewBuilder().Build(Trad, pages)
	if si.Level != Trad {
		t.Errorf("level = %s", si.Level)
	}
	if si.Index.NumDocs() != len(pages[0].Narrations) {
		t.Errorf("TRAD docs = %d, want %d", si.Index.NumDocs(), len(pages[0].Narrations))
	}
	// TRAD documents carry only narration text plus metadata.
	d := si.Index.Doc(0)
	if d.Get(FieldEvent) != "" {
		t.Error("TRAD doc has an event field")
	}
	if d.Get(FieldNarration) == "" {
		t.Error("TRAD doc lost its narration")
	}
}

func TestBuildLevelsDocCountsGrow(t *testing.T) {
	pages := testPages(t, 2, 5)
	b := NewBuilder()
	basic := b.Build(BasicExt, pages).Index.NumDocs()
	full := b.Build(FullExt, pages).Index.NumDocs()
	inf := b.Build(FullInf, pages).Index.NumDocs()
	if basic <= full-1 {
		// BASIC_EXT indexes every narration as Unknown plus the basic-info
		// events; FULL_EXT dedups extracted goal/sub narrations into the
		// basic-info documents, so it has slightly fewer docs.
		t.Errorf("BASIC_EXT %d docs vs FULL_EXT %d (dedup inverted?)", basic, full)
	}
	if inf < full {
		t.Errorf("FULL_INF %d docs < FULL_EXT %d (assists missing?)", inf, full)
	}
}

func TestTable1IndexStructure(t *testing.T) {
	// A FULL_EXT foul document must expose the Table 1 fields.
	pages := testPages(t, 1, 5)
	si := NewBuilder().Build(FullExt, pages)
	found := false
	for id := 0; id < si.Index.NumDocs(); id++ {
		d := si.Index.Doc(id)
		if d.Get(MetaKind) != "Foul" {
			continue
		}
		found = true
		if !strings.Contains(d.Get(FieldEvent), "Foul") {
			t.Errorf("event field = %q", d.Get(FieldEvent))
		}
		if d.Get(FieldSubjPlayer) == "" {
			t.Error("foul doc missing subjectPlayer")
		}
		if d.Get(FieldNarration) == "" {
			t.Error("foul doc missing narration")
		}
		if d.Get(FieldMatch) != pages[0].ID {
			t.Errorf("match field = %q", d.Get(FieldMatch))
		}
		if d.Get(FieldSubjProp) != "" {
			t.Error("FULL_EXT doc has inferred fields")
		}
		break
	}
	if !found {
		t.Fatal("no foul document")
	}
}

func TestTable2InferredIndexStructure(t *testing.T) {
	// A FULL_INF foul document gains the Table 2 fields: closure in the
	// event field ("Negative Event"), player position properties and
	// rule-derived knowledge.
	pages := testPages(t, 1, 5)
	si := NewBuilder().Build(FullInf, pages)
	checked := false
	for id := 0; id < si.Index.NumDocs(); id++ {
		d := si.Index.Doc(id)
		if d.Get(MetaKind) != "Foul" || d.Get(FieldSubjPlayer) == "" {
			continue
		}
		checked = true
		ev := d.Get(FieldEvent)
		if !strings.Contains(ev, "Negative Event") || !strings.Contains(ev, "Event") {
			t.Errorf("inferred event field = %q", ev)
		}
		if !strings.Contains(d.Get(FieldSubjProp), "Player") {
			t.Errorf("subjectPlayerProp = %q", d.Get(FieldSubjProp))
		}
		if !strings.Contains(d.Get(FieldFromRules), "Negative Move") {
			t.Errorf("fromRules = %q", d.Get(FieldFromRules))
		}
		break
	}
	if !checked {
		t.Fatal("no qualifying foul document")
	}
}

func TestGoalDocsGetKeeperThroughRules(t *testing.T) {
	// Q-6's machinery: a FULL_INF goal document should name the conceding
	// goalkeeper in its objectPlayer field via scoredToGoalkeeper.
	pages := testPages(t, 2, 5)
	si := NewBuilder().Build(FullInf, pages)
	withKeeper := 0
	for id := 0; id < si.Index.NumDocs(); id++ {
		d := si.Index.Doc(id)
		if d.Get(MetaKind) != "Goal" && !strings.HasSuffix(d.Get(MetaKind), "Goal") {
			continue
		}
		if d.Get(FieldObjPlayer) != "" {
			withKeeper++
		}
	}
	if withKeeper == 0 {
		t.Error("no goal document carries the conceding goalkeeper")
	}
}

func TestSearchEventFieldBeatsNarrationFalsePositive(t *testing.T) {
	// The paper's flagship ranking example: "Ronaldo misses a goal" must
	// not outrank real goals for the query "goal".
	pages := testPages(t, 2, 5)
	si := NewBuilder().Build(FullInf, pages)
	hits := si.Search("goal", 0)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	sawMissAboveGoal := false
	seenGoal := false
	for i := len(hits) - 1; i >= 0; i-- {
		kind := hits[i].Meta(MetaKind)
		if strings.HasSuffix(kind, "Goal") && kind != "OwnGoal" {
			seenGoal = true
		}
		if kind == "Miss" && !seenGoal {
			continue
		}
		if kind == "Miss" && seenGoal {
			// A miss ranked above some goal: iterate from bottom, so seeing
			// a goal before a miss means the miss is ranked higher.
			sawMissAboveGoal = true
		}
	}
	if sawMissAboveGoal {
		t.Error("a Miss document outranks a Goal document for query 'goal'")
	}
}

func TestPhrasalSearchDiscriminatesSubjectObject(t *testing.T) {
	pages := testPages(t, 2, 42)
	b := NewBuilder()
	si := b.Build(PhrExp, pages)

	// "foul by daniel to florent" must rank Daniel-subject fouls first.
	hits := si.Search("foul by daniel to florent", 5)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	top := hits[0]
	if !strings.Contains(top.Meta(MetaSubject), "Daniel") {
		t.Errorf("top subject = %q", top.Meta(MetaSubject))
	}
	if !strings.Contains(top.Meta(MetaObject), "Florent") {
		t.Errorf("top object = %q", top.Meta(MetaObject))
	}

	// Swapped roles must retrieve the swapped foul.
	hits = si.Search("foul by florent to daniel", 5)
	if len(hits) == 0 {
		t.Fatal("no hits for swapped query")
	}
	if !strings.Contains(hits[0].Meta(MetaSubject), "Florent") {
		t.Errorf("swapped top subject = %q", hits[0].Meta(MetaSubject))
	}
}

func TestSearchLimit(t *testing.T) {
	pages := testPages(t, 1, 5)
	si := NewBuilder().Build(FullInf, pages)
	if got := len(si.Search("foul", 3)); got != 3 {
		t.Errorf("limited search returned %d", got)
	}
}

func TestHitMeta(t *testing.T) {
	var h Hit
	if h.Meta(MetaKind) != "" {
		t.Error("nil doc Meta should be empty")
	}
}

func TestBuilderAblationFlags(t *testing.T) {
	pages := testPages(t, 1, 5)
	b := NewBuilder()
	b.DisableNarrationField = true
	si := b.Build(FullInf, pages)
	for id := 0; id < si.Index.NumDocs(); id++ {
		if si.Index.Doc(id).Get(FieldNarration) != "" {
			t.Fatal("narration field present despite ablation")
		}
	}
}

func TestUnknownEventsSearchableByNarration(t *testing.T) {
	// The recall floor: color narrations are Unknown docs but still
	// findable through full text.
	pages := testPages(t, 1, 5)
	si := NewBuilder().Build(FullInf, pages)
	hits := si.Search("atmosphere electric", 0)
	found := false
	for _, h := range hits {
		if h.Meta(MetaKind) == string(soccer.KindUnknown) {
			found = true
		}
	}
	if !found {
		t.Error("color narration not retrievable")
	}
}

func TestAdvancedQuerySyntax(t *testing.T) {
	pages := testPages(t, 2, 42)
	si := NewBuilder().Build(FullInf, pages)

	// Quoted phrase: "yellow card" only matches where the words are
	// consecutive in a field.
	phrase := si.Search(`"yellow card"`, 0)
	if len(phrase) == 0 {
		t.Error("phrase query found nothing")
	}
	for _, h := range phrase {
		kind := h.Meta(MetaKind)
		if !strings.Contains(kind, "Yellow") {
			t.Errorf("phrase matched kind %q", kind)
		}
	}

	// Exclusion: every foul except Alex's.
	excl := si.Search("foul -alex", 0)
	for _, h := range excl {
		if strings.Contains(h.Meta(MetaSubject), "Alex") && h.Meta(MetaKind) == "Foul" {
			t.Errorf("excluded subject returned: %v", h.Meta(MetaSubject))
		}
	}

	// Fuzzy: misspelled player name still retrieves.
	fuzzy := si.Search("mesi~", 5)
	found := false
	for _, h := range fuzzy {
		if strings.Contains(h.Meta(MetaSubject), "Messi") || strings.Contains(h.Meta(MetaObject), "Messi") {
			found = true
		}
	}
	if !found {
		t.Error("fuzzy query missed Messi")
	}

	// Field prefix restricts to one field.
	fielded := si.Search("event:punishment", 0)
	for _, h := range fielded {
		if !strings.Contains(h.Doc.Get(FieldEvent), "Punishment") {
			t.Errorf("event:punishment matched %q", h.Doc.Get(FieldEvent))
		}
	}
	if len(fielded) == 0 {
		t.Error("fielded query found nothing")
	}
}

func TestLevelsOrder(t *testing.T) {
	if len(Levels) != 5 || Levels[0] != Trad || Levels[4] != PhrExp {
		t.Errorf("Levels = %v", Levels)
	}
}

func TestParallelBuildMatchesSerial(t *testing.T) {
	pages := testPages(t, 4, 42)
	serial := &Builder{Ontology: NewBuilder().Ontology, Reasoner: NewBuilder().Reasoner, Rules: NewBuilder().Rules, Parallelism: 1}
	par := NewBuilder()
	par.Parallelism = 4

	a := serial.Build(FullInf, pages)
	b := par.Build(FullInf, pages)
	if a.Index.NumDocs() != b.Index.NumDocs() {
		t.Fatalf("doc counts differ: %d vs %d", a.Index.NumDocs(), b.Index.NumDocs())
	}
	for _, q := range []string{"goal", "punishment", "henry negative moves", "foul by daniel"} {
		ha := a.Search(q, 10)
		hb := b.Search(q, 10)
		if len(ha) != len(hb) {
			t.Fatalf("query %q: %d vs %d hits", q, len(ha), len(hb))
		}
		for i := range ha {
			if ha[i].DocID != hb[i].DocID {
				t.Errorf("query %q rank %d: doc %d vs %d", q, i, ha[i].DocID, hb[i].DocID)
			}
		}
	}
}
