// Package cli carries the small helpers shared by the cmd/ executables:
// corpus/page loading flags and page-directory I/O.
package cli

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/crawler"
	"repro/internal/soccer"
)

// CorpusFlags bundles the standard generation flags.
type CorpusFlags struct {
	Matches  int
	Seed     int64
	Narr     int
	PagesDir string
	NoForce  bool
}

// Register installs the flags on the given FlagSet.
func (c *CorpusFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&c.Matches, "matches", 10, "number of matches to simulate")
	fs.Int64Var(&c.Seed, "seed", 42, "generation seed")
	fs.IntVar(&c.Narr, "narrations", 118, "approximate narrations per match")
	fs.StringVar(&c.PagesDir, "pages", "", "load crawled pages from this directory instead of simulating")
	fs.BoolVar(&c.NoForce, "no-coverage", false, "disable the paper-coverage forced events")
}

// Config converts the flags to a generator config.
func (c *CorpusFlags) Config() soccer.Config {
	return soccer.Config{
		Matches:            c.Matches,
		Seed:               c.Seed,
		NarrationsPerMatch: c.Narr,
		PaperCoverage:      !c.NoForce,
	}
}

// LoadPages returns pages either from -pages or by simulating a corpus.
// The corpus is non-nil only in the simulated case (it carries the ground
// truth the evaluation needs).
func (c *CorpusFlags) LoadPages() ([]*crawler.MatchPage, *soccer.Corpus, error) {
	if c.PagesDir != "" {
		pages, err := ReadPagesDir(c.PagesDir)
		return pages, nil, err
	}
	corpus := soccer.Generate(c.Config())
	return crawler.PagesFromCorpus(corpus), corpus, nil
}

// WritePagesDir renders every match of the corpus as an HTML page file.
func WritePagesDir(dir string, corpus *soccer.Corpus) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, m := range corpus.Matches {
		path := filepath.Join(dir, m.ID+".html")
		if err := os.WriteFile(path, []byte(crawler.RenderMatchPage(m)), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ReadPagesDir parses every .html page in the directory, sorted by name.
func ReadPagesDir(dir string) ([]*crawler.MatchPage, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".html") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var pages []*crawler.MatchPage
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		page, err := crawler.ParseMatchPage(string(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", n, err)
		}
		pages = append(pages, page)
	}
	if len(pages) == 0 {
		return nil, fmt.Errorf("no .html pages in %s", dir)
	}
	return pages, nil
}

// Fatal prints the error and exits non-zero.
func Fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
