package cli

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/soccer"
)

func TestCorpusFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var cf CorpusFlags
	cf.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	cfg := cf.Config()
	if cfg.Matches != 10 || cfg.Seed != 42 || !cfg.PaperCoverage {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestCorpusFlagsParsing(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var cf CorpusFlags
	cf.Register(fs)
	if err := fs.Parse([]string{"-matches", "3", "-seed", "7", "-no-coverage"}); err != nil {
		t.Fatal(err)
	}
	cfg := cf.Config()
	if cfg.Matches != 3 || cfg.Seed != 7 || cfg.PaperCoverage {
		t.Errorf("parsed = %+v", cfg)
	}
}

func TestWriteReadPagesDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	corpus := soccer.Generate(soccer.Config{Matches: 3, Seed: 5, NarrationsPerMatch: 40})
	if err := WritePagesDir(dir, corpus); err != nil {
		t.Fatal(err)
	}
	pages, err := ReadPagesDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 3 {
		t.Fatalf("%d pages", len(pages))
	}
	// Pages come back sorted by file name; every match must be present.
	byID := map[string]bool{}
	for _, p := range pages {
		byID[p.ID] = true
	}
	for _, m := range corpus.Matches {
		if !byID[m.ID] {
			t.Errorf("match %s lost in round trip", m.ID)
		}
	}
}

func TestReadPagesDirErrors(t *testing.T) {
	if _, err := ReadPagesDir("/nonexistent-dir-for-test"); err == nil {
		t.Error("missing dir accepted")
	}
	empty := t.TempDir()
	if _, err := ReadPagesDir(empty); err == nil {
		t.Error("empty dir accepted")
	}
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "x.html"), []byte("<garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPagesDir(bad); err == nil {
		t.Error("malformed page accepted")
	}
}

func TestLoadPagesFromDir(t *testing.T) {
	dir := t.TempDir()
	corpus := soccer.Generate(soccer.Config{Matches: 2, Seed: 5, NarrationsPerMatch: 40})
	if err := WritePagesDir(dir, corpus); err != nil {
		t.Fatal(err)
	}
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var cf CorpusFlags
	cf.Register(fs)
	if err := fs.Parse([]string{"-pages", dir}); err != nil {
		t.Fatal(err)
	}
	pages, c, err := cf.LoadPages()
	if err != nil {
		t.Fatal(err)
	}
	if c != nil {
		t.Error("corpus should be nil when loading from disk")
	}
	if len(pages) != 2 {
		t.Errorf("%d pages", len(pages))
	}
}

func TestWritePagesDirBadTarget(t *testing.T) {
	corpus := soccer.Generate(soccer.Config{Matches: 1, Seed: 1, NarrationsPerMatch: 30})
	// Target path collides with an existing file.
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WritePagesDir(file, corpus); err == nil {
		t.Error("WritePagesDir into a file succeeded")
	}
}

func TestLoadPagesBadDir(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var cf CorpusFlags
	cf.Register(fs)
	if err := fs.Parse([]string{"-pages", "/definitely/not/here"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cf.LoadPages(); err == nil {
		t.Error("missing pages dir accepted")
	}
}
