package rdf

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNTriplesRoundTrip(t *testing.T) {
	g := NewGraph()
	goal := soccerIRI("goal_1")
	g.AddSPO(goal, RDFType, soccerIRI("Goal"))
	g.AddSPO(goal, soccerIRI("inMinute"), NewInt(10))
	g.AddSPO(goal, soccerIRI("narration"), NewLiteral(`Eto'o "scores"!`))
	g.AddSPO(goal, soccerIRI("comment"), NewLangLiteral("gol", "tr"))
	g.AddSPO(NewBlank("b9"), RDFType, soccerIRI("Assist"))

	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatalf("ReadNTriples: %v", err)
	}
	if back.Len() != g.Len() {
		t.Fatalf("round trip %d triples, want %d", back.Len(), g.Len())
	}
	for _, tr := range g.All() {
		if !back.Has(tr) {
			t.Errorf("lost %v", tr)
		}
	}
}

func TestNTriplesSkipsCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
<http://x/a> <http://x/p> "v" .

<http://x/b> <http://x/p> <http://x/c> .
`
	g, err := ReadNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Errorf("len = %d", g.Len())
	}
}

func TestNTriplesErrors(t *testing.T) {
	cases := []string{
		`<http://x/a> <http://x/p> "v"`,           // missing dot
		`<http://x/a> <http://x/p>`,               // missing object
		`"lit" <http://x/p> <http://x/o> .`,       // literal subject
		`<http://x/a> "lit" <http://x/o> .`,       // literal predicate
		`<http://x/a> _:b <http://x/o> .`,         // blank predicate
		`<http://x/a> <http://x/p> "unclosed .`,   // unterminated literal
		`<http://x/a <http://x/p> <http://x/o> .`, // malformed IRI
	}
	for _, src := range cases {
		if _, err := ReadNTriples(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestNTriplesRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewGraph()
		for i := 0; i < int(n%40)+1; i++ {
			g.Add(randomTriple(r))
		}
		var buf bytes.Buffer
		if WriteNTriples(&buf, g) != nil {
			return false
		}
		back, err := ReadNTriples(&buf)
		if err != nil || back.Len() != g.Len() {
			return false
		}
		for _, tr := range g.All() {
			if !back.Has(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
