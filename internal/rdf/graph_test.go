package rdf

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func soccerIRI(local string) Term { return NewIRI(NSSoccer + local) }

func TestGraphAddHasLen(t *testing.T) {
	g := NewGraph()
	tr := NewTriple(soccerIRI("goal1"), RDFType, soccerIRI("Goal"))
	if !g.Add(tr) {
		t.Error("first Add returned false")
	}
	if g.Add(tr) {
		t.Error("duplicate Add returned true")
	}
	if !g.Has(tr) {
		t.Error("Has missed added triple")
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
	if !g.HasSPO(tr.S, tr.P, tr.O) {
		t.Error("HasSPO missed added triple")
	}
}

func TestGraphRemove(t *testing.T) {
	g := NewGraph()
	a := NewTriple(soccerIRI("e1"), RDFType, soccerIRI("Goal"))
	b := NewTriple(soccerIRI("e1"), RDFType, soccerIRI("Event"))
	g.Add(a)
	g.Add(b)
	if !g.Remove(a) {
		t.Error("Remove of present triple returned false")
	}
	if g.Remove(a) {
		t.Error("Remove of absent triple returned true")
	}
	if g.Has(a) {
		t.Error("removed triple still present")
	}
	if !g.Has(b) {
		t.Error("unrelated triple removed")
	}
	if got := g.Match(soccerIRI("e1"), Wildcard, Wildcard); len(got) != 1 {
		t.Errorf("subject index has %d entries after removal, want 1", len(got))
	}
	if got := g.Match(Wildcard, Wildcard, soccerIRI("Goal")); len(got) != 0 {
		t.Errorf("object index has %d entries after removal, want 0", len(got))
	}
}

func TestGraphMatchPatterns(t *testing.T) {
	g := NewGraph()
	goal := soccerIRI("goal1")
	foul := soccerIRI("foul1")
	g.AddSPO(goal, RDFType, soccerIRI("Goal"))
	g.AddSPO(foul, RDFType, soccerIRI("Foul"))
	g.AddSPO(goal, soccerIRI("inMinute"), NewInt(10))
	g.AddSPO(foul, soccerIRI("inMinute"), NewInt(43))

	cases := []struct {
		name    string
		s, p, o Term
		want    int
	}{
		{"all wildcards", Wildcard, Wildcard, Wildcard, 4},
		{"by subject", goal, Wildcard, Wildcard, 2},
		{"by predicate", Wildcard, RDFType, Wildcard, 2},
		{"by object", Wildcard, Wildcard, soccerIRI("Goal"), 1},
		{"s+p", goal, RDFType, Wildcard, 1},
		{"p+o", Wildcard, RDFType, soccerIRI("Foul"), 1},
		{"exact", goal, soccerIRI("inMinute"), NewInt(10), 1},
		{"no match", goal, RDFType, soccerIRI("Foul"), 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := g.Match(c.s, c.p, c.o); len(got) != c.want {
				t.Errorf("Match returned %d triples, want %d", len(got), c.want)
			}
		})
	}
}

func TestGraphObjectsSubjectsDeterministic(t *testing.T) {
	g := NewGraph()
	e := soccerIRI("e1")
	g.AddSPO(e, RDFType, soccerIRI("Goal"))
	g.AddSPO(e, RDFType, soccerIRI("Event"))
	g.AddSPO(e, RDFType, soccerIRI("PositiveEvent"))
	want := []Term{soccerIRI("Event"), soccerIRI("Goal"), soccerIRI("PositiveEvent")}
	for i := 0; i < 5; i++ {
		if got := g.Objects(e, RDFType); !reflect.DeepEqual(got, want) {
			t.Fatalf("Objects = %v, want %v", got, want)
		}
	}
	subs := g.Subjects(RDFType, soccerIRI("Goal"))
	if len(subs) != 1 || subs[0] != e {
		t.Errorf("Subjects = %v", subs)
	}
}

func TestGraphObjectsDeduplicated(t *testing.T) {
	g := NewGraph()
	e := soccerIRI("e1")
	// Same object via two predicates should still appear once per predicate query.
	g.AddSPO(e, soccerIRI("subjectPlayer"), NewLiteral("Messi"))
	g.AddSPO(e, soccerIRI("scorerPlayer"), NewLiteral("Messi"))
	if got := g.Objects(e, soccerIRI("subjectPlayer")); len(got) != 1 {
		t.Errorf("Objects = %v", got)
	}
}

func TestFirstObject(t *testing.T) {
	g := NewGraph()
	e := soccerIRI("e1")
	if !g.FirstObject(e, RDFType).IsZero() {
		t.Error("FirstObject on empty graph not zero")
	}
	g.AddSPO(e, soccerIRI("inMinute"), NewInt(7))
	if got := g.FirstObject(e, soccerIRI("inMinute")); got != NewInt(7) {
		t.Errorf("FirstObject = %v", got)
	}
}

func TestGraphCloneIndependence(t *testing.T) {
	g := NewGraph()
	g.AddSPO(soccerIRI("a"), RDFType, soccerIRI("Goal"))
	c := g.Clone()
	c.AddSPO(soccerIRI("b"), RDFType, soccerIRI("Foul"))
	if g.Len() != 1 {
		t.Errorf("clone write leaked into original: len=%d", g.Len())
	}
	if c.Len() != 2 {
		t.Errorf("clone len = %d, want 2", c.Len())
	}
	// Blank node sequences must not collide after cloning.
	b1 := g.NewBlankNode()
	b2 := c.NewBlankNode()
	if b1 != b2 {
		// Same counter state is fine (they're different graphs), but within a
		// graph they must be distinct.
		t.Logf("blank nodes diverge across graphs: %v vs %v", b1, b2)
	}
	if g.NewBlankNode() == b1 {
		t.Error("NewBlankNode repeated a label")
	}
}

func TestNewBlankNodeUnique(t *testing.T) {
	g := NewGraph()
	seen := make(map[Term]bool)
	for i := 0; i < 1000; i++ {
		b := g.NewBlankNode()
		if seen[b] {
			t.Fatalf("duplicate blank node %v at iteration %d", b, i)
		}
		seen[b] = true
	}
}

func TestGraphAddAll(t *testing.T) {
	a := NewGraph()
	a.AddSPO(soccerIRI("x"), RDFType, soccerIRI("Goal"))
	b := NewGraph()
	b.AddSPO(soccerIRI("y"), RDFType, soccerIRI("Foul"))
	b.AddAll(a)
	if b.Len() != 2 {
		t.Errorf("AddAll result len = %d, want 2", b.Len())
	}
}

func TestGraphConcurrentReads(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 100; i++ {
		g.AddSPO(soccerIRI(fmt.Sprintf("e%d", i)), RDFType, soccerIRI("Event"))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if n := len(g.Match(Wildcard, RDFType, soccerIRI("Event"))); n != 100 {
					t.Errorf("concurrent Match = %d, want 100", n)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestSortTriplesTotalOrder(t *testing.T) {
	ts := []Triple{
		{soccerIRI("b"), RDFType, soccerIRI("Goal")},
		{soccerIRI("a"), RDFType, soccerIRI("Goal")},
		{soccerIRI("a"), RDFType, soccerIRI("Event")},
		{soccerIRI("a"), RDFSLabel, NewLiteral("x")},
	}
	SortTriples(ts)
	for i := 1; i < len(ts); i++ {
		a, b := ts[i-1], ts[i]
		if a == b {
			t.Fatalf("duplicate after sort at %d", i)
		}
	}
	if ts[len(ts)-1].S != soccerIRI("b") {
		t.Errorf("sort order wrong: %v", ts)
	}
}

// randomTriple builds a deterministic pseudo-random triple for property tests.
func randomTriple(r *rand.Rand) Triple {
	subj := soccerIRI(fmt.Sprintf("s%d", r.Intn(20)))
	pred := soccerIRI(fmt.Sprintf("p%d", r.Intn(5)))
	var obj Term
	switch r.Intn(3) {
	case 0:
		obj = soccerIRI(fmt.Sprintf("o%d", r.Intn(20)))
	case 1:
		obj = NewInt(r.Intn(90))
	default:
		obj = NewLiteral(fmt.Sprintf("lit %d", r.Intn(20)))
	}
	return Triple{S: subj, P: pred, O: obj}
}

// Property: for any set of triples, every index answers Match consistently
// with a naive scan.
func TestMatchAgreesWithScanProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewGraph()
		var all []Triple
		for i := 0; i < int(n%64)+1; i++ {
			tr := randomTriple(r)
			if g.Add(tr) {
				all = append(all, tr)
			}
		}
		probe := randomTriple(r)
		check := func(s, p, o Term) bool {
			got := g.Match(s, p, o)
			want := 0
			for _, tr := range all {
				if (s.IsZero() || tr.S == s) && (p.IsZero() || tr.P == p) && (o.IsZero() || tr.O == o) {
					want++
				}
			}
			return len(got) == want
		}
		return check(probe.S, Wildcard, Wildcard) &&
			check(Wildcard, probe.P, Wildcard) &&
			check(Wildcard, Wildcard, probe.O) &&
			check(probe.S, probe.P, Wildcard) &&
			check(probe.S, probe.P, probe.O) &&
			check(Wildcard, Wildcard, Wildcard)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Add then Remove of a random triple set leaves the graph empty
// and all indexes clean.
func TestAddRemoveInverseProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewGraph()
		uniq := make(map[Triple]bool)
		for i := 0; i < int(n%48)+1; i++ {
			tr := randomTriple(r)
			g.Add(tr)
			uniq[tr] = true
		}
		for tr := range uniq {
			if !g.Remove(tr) {
				return false
			}
		}
		return g.Len() == 0 && len(g.Match(Wildcard, Wildcard, Wildcard)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
