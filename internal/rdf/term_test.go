package rdf

import (
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	cases := []struct {
		name string
		term Term
		kind TermKind
	}{
		{"iri", NewIRI(NSSoccer + "Goal"), IRI},
		{"blank", NewBlank("b1"), Blank},
		{"plain literal", NewLiteral("hello"), Literal},
		{"lang literal", NewLangLiteral("gol", "tr"), Literal},
		{"typed literal", NewTypedLiteral("5", XSDInteger), Literal},
		{"int literal", NewInt(42), Literal},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.term.Kind != c.kind {
				t.Errorf("kind = %v, want %v", c.term.Kind, c.kind)
			}
			if c.term.IsZero() {
				t.Error("constructed term reported IsZero")
			}
		})
	}
}

func TestTermKindPredicates(t *testing.T) {
	if !NewIRI("x").IsIRI() || NewIRI("x").IsBlank() || NewIRI("x").IsLiteral() {
		t.Error("IRI predicates wrong")
	}
	if !NewBlank("b").IsBlank() || NewBlank("b").IsIRI() {
		t.Error("blank predicates wrong")
	}
	if !NewLiteral("l").IsLiteral() || NewLiteral("l").IsIRI() {
		t.Error("literal predicates wrong")
	}
}

func TestTermInt(t *testing.T) {
	if v, ok := NewInt(45).Int(); !ok || v != 45 {
		t.Errorf("Int() = %d, %v; want 45, true", v, ok)
	}
	if _, ok := NewLiteral("abc").Int(); ok {
		t.Error("non-numeric literal parsed as int")
	}
	if _, ok := NewIRI("x").Int(); ok {
		t.Error("IRI parsed as int")
	}
}

func TestLocalName(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI(NSSoccer + "Goal"), "Goal"},
		{NewIRI("http://example.org/path/Player"), "Player"},
		{NewIRI("urn:noseparator"), "urn:noseparator"},
		{NewBlank("b7"), "b7"},
		{NewLiteral("Lionel Messi"), "Lionel Messi"},
	}
	for _, c := range cases {
		if got := c.term.LocalName(); got != c.want {
			t.Errorf("LocalName(%v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://x/y"), "<http://x/y>"},
		{NewBlank("b1"), "_:b1"},
		{NewLiteral("plain"), `"plain"`},
		{NewLangLiteral("gol", "tr"), `"gol"@tr`},
		{NewTypedLiteral("7", XSDInteger), `"7"^^<` + XSDInteger + `>`},
		{NewLiteral(`with "quotes" and \slash`), `"with \"quotes\" and \\slash"`},
		{NewLiteral("line\nbreak"), `"line\nbreak"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestTermComparability(t *testing.T) {
	a := NewIRI(NSSoccer + "Goal")
	b := NewIRI(NSSoccer + "Goal")
	if a != b {
		t.Error("identical IRIs compare unequal")
	}
	m := map[Term]int{a: 1}
	if m[b] != 1 {
		t.Error("term does not work as map key")
	}
	if NewLiteral("x") == NewLangLiteral("x", "en") {
		t.Error("plain and lang literal compare equal")
	}
}

func TestExpandQName(t *testing.T) {
	if got, ok := ExpandQName("pre:Goal"); !ok || got != NSSoccer+"Goal" {
		t.Errorf("ExpandQName(pre:Goal) = %q, %v", got, ok)
	}
	if got, ok := ExpandQName("rdf:type"); !ok || got != NSRDF+"type" {
		t.Errorf("ExpandQName(rdf:type) = %q, %v", got, ok)
	}
	if _, ok := ExpandQName("nope:X"); ok {
		t.Error("unknown prefix expanded")
	}
	if _, ok := ExpandQName("nocolon"); ok {
		t.Error("name without colon expanded")
	}
}

func TestCompactIRI(t *testing.T) {
	if got := CompactIRI(NSSoccer + "Goal"); got != "pre:Goal" {
		t.Errorf("CompactIRI = %q, want pre:Goal", got)
	}
	if got := CompactIRI("http://unknown.example/x"); got != "<http://unknown.example/x>" {
		t.Errorf("CompactIRI = %q", got)
	}
	// A local part with characters outside the safe set must fall back to <>.
	if got := CompactIRI(NSSoccer + "a b"); got != "<"+NSSoccer+"a b>" {
		t.Errorf("CompactIRI with space = %q", got)
	}
}

func TestEscapeRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		return unescapeLiteral(escapeLiteral(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
