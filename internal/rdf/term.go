// Package rdf implements the minimal RDF data model the retrieval system is
// built on: terms (IRIs, blank nodes, literals), triples, indexed in-memory
// graphs and a Turtle-subset serialization used to persist per-match models.
//
// The paper stores extracted and inferred knowledge in OWL files manipulated
// through Jena; this package is the substrate standing in for Jena's Model
// API. It is deliberately small: only the features exercised by the ontology,
// reasoner, rule engine and population modules are present.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

const (
	// IRI identifies a resource, e.g. a class, property or individual.
	IRI TermKind = iota
	// Blank is an anonymous node, used by makeTemp in the rule engine.
	Blank
	// Literal is a data value with an optional language tag or datatype.
	Literal
)

// String returns a human-readable name for the kind.
func (k TermKind) String() string {
	switch k {
	case IRI:
		return "iri"
	case Blank:
		return "blank"
	case Literal:
		return "literal"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Well-known datatype IRIs (XML Schema).
const (
	XSDString  = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDate    = "http://www.w3.org/2001/XMLSchema#date"
	XSDBoolean = "http://www.w3.org/2001/XMLSchema#boolean"
)

// Term is an RDF term. Terms are plain comparable values: two terms are the
// same node iff their struct fields are equal, so they can key Go maps
// directly, which is what the graph indexes rely on.
type Term struct {
	Kind TermKind
	// Value is the IRI string for IRI terms, the label for blank nodes and
	// the lexical form for literals.
	Value string
	// Lang is the language tag of a language-tagged literal ("" otherwise).
	Lang string
	// Datatype is the datatype IRI of a typed literal ("" for plain ones).
	Datatype string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewBlank returns a blank node with the given label.
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// NewLiteral returns a plain string literal.
func NewLiteral(lexical string) Term { return Term{Kind: Literal, Value: lexical} }

// NewLangLiteral returns a language-tagged literal, e.g. a Turkish narration.
func NewLangLiteral(lexical, lang string) Term {
	return Term{Kind: Literal, Value: lexical, Lang: lang}
}

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lexical, datatype string) Term {
	return Term{Kind: Literal, Value: lexical, Datatype: datatype}
}

// NewInt returns an xsd:integer literal.
func NewInt(v int) Term {
	return Term{Kind: Literal, Value: fmt.Sprintf("%d", v), Datatype: XSDInteger}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsZero reports whether the term is the zero value, which no valid RDF term
// is (an IRI with an empty value is not produced by this package).
func (t Term) IsZero() bool { return t == Term{} }

// Int parses the literal as an integer. It returns false when the term is
// not a literal or the whole lexical form is not an integer — "2009-03-04"
// must not half-parse as 2009, or date filters would silently compare
// years.
func (t Term) Int() (int, bool) {
	if t.Kind != Literal {
		return 0, false
	}
	v, err := strconv.Atoi(t.Value)
	if err != nil {
		return 0, false
	}
	return v, true
}

// LocalName returns the fragment or last path segment of an IRI, the label
// of a blank node, and the lexical form of a literal. It is what the
// semantic indexer tokenizes when it turns ontology terms into index text.
func (t Term) LocalName() string {
	if t.Kind != IRI {
		return t.Value
	}
	if i := strings.LastIndexByte(t.Value, '#'); i >= 0 {
		return t.Value[i+1:]
	}
	if i := strings.LastIndexByte(t.Value, '/'); i >= 0 {
		return t.Value[i+1:]
	}
	return t.Value
}

// String renders the term in N-Triples-like syntax, for debugging and for
// the Turtle writer.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	default:
		s := `"` + escapeLiteral(t.Value) + `"`
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" && t.Datatype != XSDString {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	}
}

func escapeLiteral(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`, "\r", `\r`, "\t", `\t`)
	return r.Replace(s)
}

// Triple is a single RDF statement.
type Triple struct {
	S, P, O Term
}

// NewTriple is a convenience constructor.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples-like syntax.
func (tr Triple) String() string {
	return tr.S.String() + " " + tr.P.String() + " " + tr.O.String() + " ."
}
