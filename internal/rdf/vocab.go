package rdf

// Well-known vocabulary IRIs used across the system. Only the RDF, RDFS and
// OWL terms actually consumed by the ontology model, reasoner and rule
// engine are listed.
const (
	// RDF namespace.
	NSRDF = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	// RDFS namespace.
	NSRDFS = "http://www.w3.org/2000/01/rdf-schema#"
	// OWL namespace.
	NSOWL = "http://www.w3.org/2002/07/owl#"
	// NSSoccer is the namespace of the soccer domain ontology, mirroring the
	// "pre:" prefix of the paper's Jena rules.
	NSSoccer = "http://ceng.metu.edu.tr/soccer#"
)

// Frequently used property and class terms.
var (
	RDFType            = NewIRI(NSRDF + "type")
	RDFSSubClassOf     = NewIRI(NSRDFS + "subClassOf")
	RDFSSubPropertyOf  = NewIRI(NSRDFS + "subPropertyOf")
	RDFSDomain         = NewIRI(NSRDFS + "domain")
	RDFSRange          = NewIRI(NSRDFS + "range")
	RDFSLabel          = NewIRI(NSRDFS + "label")
	RDFSComment        = NewIRI(NSRDFS + "comment")
	OWLClass           = NewIRI(NSOWL + "Class")
	OWLObjectProperty  = NewIRI(NSOWL + "ObjectProperty")
	OWLDataProperty    = NewIRI(NSOWL + "DatatypeProperty")
	OWLThing           = NewIRI(NSOWL + "Thing")
	OWLNothing         = NewIRI(NSOWL + "Nothing")
	OWLDisjointWith    = NewIRI(NSOWL + "disjointWith")
	OWLNamedIndividual = NewIRI(NSOWL + "NamedIndividual")
)

// Prefixes maps the short prefixes used by the Turtle writer and the rule
// parser to their namespaces.
var Prefixes = map[string]string{
	"rdf":  NSRDF,
	"rdfs": NSRDFS,
	"owl":  NSOWL,
	"pre":  NSSoccer,
	"xsd":  "http://www.w3.org/2001/XMLSchema#",
}

// ExpandQName expands a prefixed name such as "pre:Goal" against Prefixes.
// It returns the input unchanged (and false) when the prefix is unknown or
// the name has no colon.
func ExpandQName(qname string) (string, bool) {
	for i := 0; i < len(qname); i++ {
		if qname[i] == ':' {
			if ns, ok := Prefixes[qname[:i]]; ok {
				return ns + qname[i+1:], true
			}
			return qname, false
		}
	}
	return qname, false
}

// CompactIRI renders an IRI with a known prefix, falling back to <iri>.
func CompactIRI(iri string) string {
	for p, ns := range Prefixes {
		if len(iri) > len(ns) && iri[:len(ns)] == ns {
			local := iri[len(ns):]
			if isLocalName(local) {
				return p + ":" + local
			}
		}
	}
	return "<" + iri + ">"
}

func isLocalName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-', r == '.':
		default:
			return false
		}
	}
	return true
}
