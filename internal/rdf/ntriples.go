package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// N-Triples support: the line-oriented exchange format. Turtle is the
// pipeline's native serialization (compact, prefixed); N-Triples is what
// external triple stores bulk-load, so the system can hand its models to
// other semantic-web tooling.

// WriteNTriples serializes the graph one triple per line, sorted.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.All() {
		if _, err := fmt.Fprintln(bw, t.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNTriples parses N-Triples lines into a new graph. Comments (#) and
// blank lines are skipped.
func ReadNTriples(r io.Reader) (*Graph, error) {
	g := NewGraph()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseNTripleLine(line)
		if err != nil {
			return nil, fmt.Errorf("ntriples: line %d: %w", lineNo, err)
		}
		g.Add(t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ntriples: %w", err)
	}
	return g, nil
}

func parseNTripleLine(line string) (Triple, error) {
	rest := line
	s, rest, err := readNTTerm(rest)
	if err != nil {
		return Triple{}, err
	}
	p, rest, err := readNTTerm(rest)
	if err != nil {
		return Triple{}, err
	}
	o, rest, err := readNTTerm(rest)
	if err != nil {
		return Triple{}, err
	}
	rest = strings.TrimSpace(rest)
	if rest != "." {
		return Triple{}, fmt.Errorf("expected terminating '.', got %q", rest)
	}
	if s.IsLiteral() {
		return Triple{}, fmt.Errorf("literal subject")
	}
	if !p.IsIRI() {
		return Triple{}, fmt.Errorf("non-IRI predicate")
	}
	return Triple{S: s, P: p, O: o}, nil
}

func readNTTerm(s string) (Term, string, error) {
	s = strings.TrimLeft(s, " \t")
	if s == "" {
		return Term{}, "", fmt.Errorf("unexpected end of line")
	}
	switch s[0] {
	case '<':
		j := strings.IndexByte(s, '>')
		if j < 0 {
			return Term{}, "", fmt.Errorf("unterminated IRI")
		}
		return NewIRI(s[1:j]), s[j+1:], nil
	case '_':
		if len(s) < 2 || s[1] != ':' {
			return Term{}, "", fmt.Errorf("malformed blank node")
		}
		j := 2
		for j < len(s) && s[j] != ' ' && s[j] != '\t' {
			j++
		}
		return NewBlank(s[2:j]), s[j:], nil
	case '"':
		j := 1
		for j < len(s) {
			if s[j] == '\\' {
				j += 2
				continue
			}
			if s[j] == '"' {
				break
			}
			j++
		}
		if j >= len(s) {
			return Term{}, "", fmt.Errorf("unterminated literal")
		}
		lex := unescapeLiteral(s[1:j])
		rest := s[j+1:]
		switch {
		case strings.HasPrefix(rest, "@"):
			k := 1
			for k < len(rest) && rest[k] != ' ' && rest[k] != '\t' {
				k++
			}
			return NewLangLiteral(lex, rest[1:k]), rest[k:], nil
		case strings.HasPrefix(rest, "^^<"):
			k := strings.IndexByte(rest, '>')
			if k < 0 {
				return Term{}, "", fmt.Errorf("unterminated datatype")
			}
			return NewTypedLiteral(lex, rest[3:k]), rest[k+1:], nil
		default:
			return NewLiteral(lex), rest, nil
		}
	default:
		return Term{}, "", fmt.Errorf("unexpected term start %q", s[0])
	}
}
