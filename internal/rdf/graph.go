package rdf

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Graph is an in-memory set of triples with three hash indexes (by subject,
// by predicate, by object) so the pattern queries issued by the reasoner and
// rule engine are answered without scanning.
//
// A Graph is safe for concurrent readers; writes must not race with reads.
// The pipeline follows the paper's discipline of building models offline,
// so the only concurrent access pattern is read-only querying, which is what
// the RWMutex protects cheaply.
type Graph struct {
	mu      sync.RWMutex
	triples map[Triple]struct{}
	bySubj  map[Term][]Triple
	byPred  map[Term][]Triple
	byObj   map[Term][]Triple
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		triples: make(map[Triple]struct{}),
		bySubj:  make(map[Term][]Triple),
		byPred:  make(map[Term][]Triple),
		byObj:   make(map[Term][]Triple),
	}
}

// Add inserts a triple. It reports whether the triple was not already
// present, which the semi-naive rule engine uses to detect a fixpoint.
func (g *Graph) Add(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.triples[t]; ok {
		return false
	}
	g.triples[t] = struct{}{}
	g.bySubj[t.S] = append(g.bySubj[t.S], t)
	g.byPred[t.P] = append(g.byPred[t.P], t)
	g.byObj[t.O] = append(g.byObj[t.O], t)
	return true
}

// AddSPO is Add with unpacked terms.
func (g *Graph) AddSPO(s, p, o Term) bool { return g.Add(Triple{S: s, P: p, O: o}) }

// Remove deletes a triple. It reports whether the triple was present.
// Removal rebuilds the three per-term posting slices, which is O(degree);
// the pipeline only removes triples when retracting a failed extraction,
// so this is never on a hot path.
func (g *Graph) Remove(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.triples[t]; !ok {
		return false
	}
	delete(g.triples, t)
	g.bySubj[t.S] = dropTriple(g.bySubj[t.S], t)
	g.byPred[t.P] = dropTriple(g.byPred[t.P], t)
	g.byObj[t.O] = dropTriple(g.byObj[t.O], t)
	return true
}

func dropTriple(list []Triple, t Triple) []Triple {
	for i, x := range list {
		if x == t {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}

// Has reports whether the exact triple is present.
func (g *Graph) Has(t Triple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.triples[t]
	return ok
}

// HasSPO is Has with unpacked terms.
func (g *Graph) HasSPO(s, p, o Term) bool { return g.Has(Triple{S: s, P: p, O: o}) }

// Len returns the number of triples.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.triples)
}

// Wildcard is the zero Term; passing it to Match leaves that position
// unconstrained.
var Wildcard = Term{}

// Match returns all triples matching the pattern, where the zero Term acts
// as a wildcard in any position. The most selective available index is used.
func (g *Graph) Match(s, p, o Term) []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.matchLocked(s, p, o)
}

func (g *Graph) matchLocked(s, p, o Term) []Triple {
	switch {
	case !s.IsZero():
		return filterTriples(g.bySubj[s], Wildcard, p, o)
	case !o.IsZero():
		return filterTriples(g.byObj[o], s, p, Wildcard)
	case !p.IsZero():
		return filterTriples(g.byPred[p], s, Wildcard, o)
	default:
		out := make([]Triple, 0, len(g.triples))
		for t := range g.triples {
			out = append(out, t)
		}
		return out
	}
}

func filterTriples(candidates []Triple, s, p, o Term) []Triple {
	out := make([]Triple, 0, len(candidates))
	for _, t := range candidates {
		if (s.IsZero() || t.S == s) && (p.IsZero() || t.P == p) && (o.IsZero() || t.O == o) {
			out = append(out, t)
		}
	}
	return out
}

// Objects returns the distinct objects of triples (s, p, *), in stable order.
func (g *Graph) Objects(s, p Term) []Term {
	ts := g.Match(s, p, Wildcard)
	return distinctTerms(ts, func(t Triple) Term { return t.O })
}

// Subjects returns the distinct subjects of triples (*, p, o), in stable order.
func (g *Graph) Subjects(p, o Term) []Term {
	ts := g.Match(Wildcard, p, o)
	return distinctTerms(ts, func(t Triple) Term { return t.S })
}

func distinctTerms(ts []Triple, pick func(Triple) Term) []Term {
	seen := make(map[Term]struct{}, len(ts))
	out := make([]Term, 0, len(ts))
	for _, t := range ts {
		v := pick(t)
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	SortTerms(out)
	return out
}

// FirstObject returns the object of the first (s, p, *) triple, or the zero
// Term when none exists. Handy for functional properties such as inMinute.
func (g *Graph) FirstObject(s, p Term) Term {
	os := g.Objects(s, p)
	if len(os) == 0 {
		return Term{}
	}
	return os[0]
}

// All returns every triple in deterministic (sorted) order, which the Turtle
// writer and tests rely on for reproducible output.
func (g *Graph) All() []Triple {
	g.mu.RLock()
	ts := make([]Triple, 0, len(g.triples))
	for t := range g.triples {
		ts = append(ts, t)
	}
	g.mu.RUnlock()
	SortTriples(ts)
	return ts
}

// AddAll copies every triple of src into g.
func (g *Graph) AddAll(src *Graph) {
	for _, t := range src.All() {
		g.Add(t)
	}
}

// Clone returns a deep copy of the graph. The inference pipeline clones the
// extracted model before saturating it so the FULL_EXT index can still be
// built from the pre-inference state.
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	out.AddAll(g)
	return out
}

// blankCounter makes blank labels unique across every graph in the
// process, not just within one: per-match models are routinely merged
// (formal queries, the global-model ablation), and graph-local counters
// would collide the rule-minted assists of different matches into one node.
var blankCounter atomic.Int64

// NewBlankNode mints a fresh blank node, used by the rule engine's
// makeTemp builtin. Labels are unique process-wide.
func (g *Graph) NewBlankNode() Term {
	return NewBlank(blankLabel(int(blankCounter.Add(1))))
}

func blankLabel(id int) string {
	// Base-10 label with a stable prefix; labels never collide because ids
	// increase monotonically per graph.
	const prefix = "b"
	buf := [20]byte{}
	i := len(buf)
	for id > 0 {
		i--
		buf[i] = byte('0' + id%10)
		id /= 10
	}
	return prefix + string(buf[i:])
}

// SortTerms orders terms by kind then value, language and datatype.
func SortTerms(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return lessTerm(ts[i], ts[j]) })
}

// SortTriples orders triples lexicographically by subject, predicate, object.
func SortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.S != b.S {
			return lessTerm(a.S, b.S)
		}
		if a.P != b.P {
			return lessTerm(a.P, b.P)
		}
		return lessTerm(a.O, b.O)
	})
}

func lessTerm(a, b Term) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	if a.Lang != b.Lang {
		return a.Lang < b.Lang
	}
	return a.Datatype < b.Datatype
}
