package rdf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file implements the Turtle-subset serialization the pipeline uses to
// persist per-match models, standing in for the paper's per-game OWL files.
//
// The subset is: @prefix directives, one triple per statement terminated by
// ".", prefixed names, <absolute IRIs>, _:blank nodes, and literals with
// optional @lang or ^^datatype. Multi-predicate ";" and multi-object ","
// abbreviations are produced by the writer and accepted by the reader.

// WriteTurtle serializes the graph. Output is deterministic: prefixes and
// triples are sorted, so round-tripping a model yields byte-identical files,
// which the snapshot tests rely on.
func WriteTurtle(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)

	prefixes := make([]string, 0, len(Prefixes))
	for p := range Prefixes {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	for _, p := range prefixes {
		if _, err := fmt.Fprintf(bw, "@prefix %s: <%s> .\n", p, Prefixes[p]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw); err != nil {
		return err
	}

	triples := g.All()
	var prevSubj Term
	open := false
	for i, t := range triples {
		if t.S != prevSubj {
			if open {
				if _, err := fmt.Fprintln(bw, " ."); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%s %s %s", turtleTerm(t.S), turtleTerm(t.P), turtleTerm(t.O)); err != nil {
				return err
			}
			prevSubj = t.S
			open = true
			continue
		}
		if t.P == triples[i-1].P {
			if _, err := fmt.Fprintf(bw, ", %s", turtleTerm(t.O)); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(bw, " ;\n    %s %s", turtleTerm(t.P), turtleTerm(t.O)); err != nil {
				return err
			}
		}
	}
	if open {
		if _, err := fmt.Fprintln(bw, " ."); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func turtleTerm(t Term) string {
	switch t.Kind {
	case IRI:
		return CompactIRI(t.Value)
	case Blank:
		return "_:" + t.Value
	default:
		return t.String()
	}
}

// ReadTurtle parses the subset produced by WriteTurtle (plus simple
// hand-written files) into a new graph.
func ReadTurtle(r io.Reader) (*Graph, error) {
	g := NewGraph()
	p := &turtleParser{
		scan:     bufio.NewScanner(r),
		prefixes: make(map[string]string),
	}
	for k, v := range Prefixes {
		p.prefixes[k] = v
	}
	p.scan.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if err := p.parseInto(g); err != nil {
		return nil, err
	}
	return g, nil
}

type turtleParser struct {
	scan     *bufio.Scanner
	prefixes map[string]string
	line     int
}

func (p *turtleParser) errf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *turtleParser) parseInto(g *Graph) error {
	// Statements can span lines (the writer emits ";"-continued blocks), so
	// accumulate until a terminating "." outside a literal.
	var stmt strings.Builder
	for p.scan.Scan() {
		p.line++
		line := strings.TrimSpace(p.scan.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "@prefix") {
			if err := p.parsePrefix(line); err != nil {
				return err
			}
			continue
		}
		if stmt.Len() > 0 {
			stmt.WriteByte(' ')
		}
		stmt.WriteString(line)
		if endsStatement(line) {
			if err := p.parseStatement(strings.TrimSpace(stmt.String()), g); err != nil {
				return err
			}
			stmt.Reset()
		}
	}
	if err := p.scan.Err(); err != nil {
		return fmt.Errorf("turtle: %w", err)
	}
	if stmt.Len() > 0 {
		return p.errf("unterminated statement %q", stmt.String())
	}
	return nil
}

// endsStatement reports whether a line ends with a statement-terminating
// "." that is not inside a quoted literal.
func endsStatement(line string) bool {
	inString := false
	escaped := false
	last := byte(0)
	for i := 0; i < len(line); i++ {
		c := line[i]
		if inString {
			switch {
			case escaped:
				escaped = false
			case c == '\\':
				escaped = true
			case c == '"':
				inString = false
			}
			continue
		}
		if c == '"' {
			inString = true
		}
		if c != ' ' && c != '\t' {
			last = c
		}
	}
	return !inString && last == '.'
}

func (p *turtleParser) parsePrefix(line string) error {
	// @prefix pre: <http://...> .
	rest := strings.TrimSpace(strings.TrimPrefix(line, "@prefix"))
	rest = strings.TrimSuffix(strings.TrimSpace(rest), ".")
	rest = strings.TrimSpace(rest)
	colon := strings.Index(rest, ":")
	if colon < 0 {
		return p.errf("malformed @prefix %q", line)
	}
	name := strings.TrimSpace(rest[:colon])
	iri := strings.TrimSpace(rest[colon+1:])
	if !strings.HasPrefix(iri, "<") || !strings.HasSuffix(iri, ">") {
		return p.errf("malformed prefix IRI %q", iri)
	}
	p.prefixes[name] = iri[1 : len(iri)-1]
	return nil
}

func (p *turtleParser) parseStatement(stmt string, g *Graph) error {
	toks, err := tokenizeTurtle(stmt)
	if err != nil {
		return p.errf("%v", err)
	}
	if len(toks) == 0 {
		return nil
	}
	if toks[len(toks)-1] != "." {
		return p.errf("statement missing terminating '.': %q", stmt)
	}
	toks = toks[:len(toks)-1]
	if len(toks) < 3 {
		return p.errf("short statement %q", stmt)
	}
	subj, err := p.resolveTerm(toks[0])
	if err != nil {
		return p.errf("%v", err)
	}
	i := 1
	for i < len(toks) {
		pred, err := p.resolveTerm(toks[i])
		if err != nil {
			return p.errf("%v", err)
		}
		i++
		for {
			if i >= len(toks) {
				return p.errf("predicate %s has no object", pred)
			}
			obj, err := p.resolveTerm(toks[i])
			if err != nil {
				return p.errf("%v", err)
			}
			g.Add(Triple{S: subj, P: pred, O: obj})
			i++
			if i < len(toks) && toks[i] == "," {
				i++
				continue
			}
			break
		}
		if i < len(toks) {
			if toks[i] != ";" {
				return p.errf("expected ';' or ',' before %q", toks[i])
			}
			i++
		}
	}
	return nil
}

// tokenizeTurtle splits a statement into IRIs, prefixed names, blank nodes,
// literals (kept as single tokens including @lang / ^^type suffixes) and the
// punctuation tokens ".", ";" and ",".
func tokenizeTurtle(s string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '.' || c == ';' || c == ',':
			toks = append(toks, string(c))
			i++
		case c == '<':
			j := strings.IndexByte(s[i:], '>')
			if j < 0 {
				return nil, fmt.Errorf("unterminated IRI in %q", s)
			}
			toks = append(toks, s[i:i+j+1])
			i += j + 1
		case c == '"':
			j := i + 1
			for j < len(s) {
				if s[j] == '\\' {
					j += 2
					continue
				}
				if s[j] == '"' {
					break
				}
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("unterminated literal in %q", s)
			}
			j++ // past closing quote
			// Attach @lang or ^^<type> / ^^qname suffix.
			if j < len(s) && s[j] == '@' {
				k := j + 1
				for k < len(s) && s[k] != ' ' && s[k] != '\t' && s[k] != ';' && s[k] != ',' && s[k] != '.' {
					k++
				}
				j = k
			} else if j+1 < len(s) && s[j] == '^' && s[j+1] == '^' {
				k := j + 2
				if k < len(s) && s[k] == '<' {
					m := strings.IndexByte(s[k:], '>')
					if m < 0 {
						return nil, fmt.Errorf("unterminated datatype IRI in %q", s)
					}
					k += m + 1
				} else {
					for k < len(s) && s[k] != ' ' && s[k] != '\t' && s[k] != ';' && s[k] != ',' {
						k++
					}
				}
				j = k
			}
			toks = append(toks, s[i:j])
			i = j
		default:
			j := i
			for j < len(s) && s[j] != ' ' && s[j] != '\t' && s[j] != ';' && s[j] != ',' {
				j++
			}
			tok := s[i:j]
			// A trailing "." terminates the statement unless it is part of a
			// number or an internal dot of a local name (e.g. minute "45").
			if strings.HasSuffix(tok, ".") && tok != "." {
				toks = append(toks, tok[:len(tok)-1], ".")
			} else {
				toks = append(toks, tok)
			}
			i = j
		}
	}
	return toks, nil
}

func (p *turtleParser) resolveTerm(tok string) (Term, error) {
	switch {
	case tok == "a":
		return RDFType, nil
	case strings.HasPrefix(tok, "<"):
		return NewIRI(tok[1 : len(tok)-1]), nil
	case strings.HasPrefix(tok, "_:"):
		return NewBlank(tok[2:]), nil
	case strings.HasPrefix(tok, `"`):
		return parseLiteralToken(tok, p.prefixes)
	default:
		colon := strings.IndexByte(tok, ':')
		if colon < 0 {
			return Term{}, fmt.Errorf("unrecognized term %q", tok)
		}
		ns, ok := p.prefixes[tok[:colon]]
		if !ok {
			return Term{}, fmt.Errorf("unknown prefix in %q", tok)
		}
		return NewIRI(ns + tok[colon+1:]), nil
	}
}

func parseLiteralToken(tok string, prefixes map[string]string) (Term, error) {
	// Find the closing quote, honoring escapes.
	j := 1
	for j < len(tok) {
		if tok[j] == '\\' {
			j += 2
			continue
		}
		if tok[j] == '"' {
			break
		}
		j++
	}
	if j >= len(tok) {
		return Term{}, fmt.Errorf("unterminated literal %q", tok)
	}
	lex := unescapeLiteral(tok[1:j])
	rest := tok[j+1:]
	switch {
	case rest == "":
		return NewLiteral(lex), nil
	case strings.HasPrefix(rest, "@"):
		return NewLangLiteral(lex, rest[1:]), nil
	case strings.HasPrefix(rest, "^^<"):
		return NewTypedLiteral(lex, rest[3:len(rest)-1]), nil
	case strings.HasPrefix(rest, "^^"):
		q := rest[2:]
		colon := strings.IndexByte(q, ':')
		if colon < 0 {
			return Term{}, fmt.Errorf("bad datatype in %q", tok)
		}
		ns, ok := prefixes[q[:colon]]
		if !ok {
			return Term{}, fmt.Errorf("unknown datatype prefix in %q", tok)
		}
		return NewTypedLiteral(lex, ns+q[colon+1:]), nil
	default:
		return Term{}, fmt.Errorf("trailing garbage after literal %q", tok)
	}
}

func unescapeLiteral(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 >= len(s) {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 't':
			b.WriteByte('\t')
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
