package rdf

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTurtleWriteReadRoundTrip(t *testing.T) {
	g := NewGraph()
	goal := soccerIRI("goal_1")
	g.AddSPO(goal, RDFType, soccerIRI("Goal"))
	g.AddSPO(goal, soccerIRI("inMinute"), NewInt(10))
	g.AddSPO(goal, soccerIRI("scorerPlayer"), NewLiteral("Samuel Eto'o"))
	g.AddSPO(goal, soccerIRI("narration"), NewLangLiteral("Eto'o gol attı!", "tr"))
	g.AddSPO(goal, soccerIRI("inMatch"), NewIRI("http://other.example/match/1"))
	g.AddSPO(NewBlank("b1"), RDFType, soccerIRI("Assist"))

	var buf bytes.Buffer
	if err := WriteTurtle(&buf, g); err != nil {
		t.Fatalf("WriteTurtle: %v", err)
	}
	got, err := ReadTurtle(&buf)
	if err != nil {
		t.Fatalf("ReadTurtle: %v\noutput was:\n%s", err, buf.String())
	}
	if got.Len() != g.Len() {
		t.Fatalf("round trip len = %d, want %d\noutput:\n%s", got.Len(), g.Len(), buf.String())
	}
	for _, tr := range g.All() {
		if !got.Has(tr) {
			t.Errorf("round trip lost triple %v", tr)
		}
	}
}

func TestTurtleWriteDeterministic(t *testing.T) {
	build := func() *Graph {
		g := NewGraph()
		for i := 0; i < 20; i++ {
			g.AddSPO(soccerIRI(fmt.Sprintf("e%d", i)), RDFType, soccerIRI("Event"))
			g.AddSPO(soccerIRI(fmt.Sprintf("e%d", i)), soccerIRI("inMinute"), NewInt(i))
		}
		return g
	}
	var a, b bytes.Buffer
	if err := WriteTurtle(&a, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteTurtle(&b, build()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("WriteTurtle output not deterministic")
	}
}

func TestTurtleReadHandWritten(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
# a comment
ex:goal1 a pre:Goal ;
    pre:inMinute "10"^^xsd:integer ;
    pre:scorerPlayer "Eto'o", "Messi" .
<http://example.org/foul1> rdf:type pre:Foul .
_:b1 pre:narration "He \"scores\"!"@en .
`
	g, err := ReadTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadTurtle: %v", err)
	}
	if g.Len() != 6 {
		t.Fatalf("len = %d, want 6; triples: %v", g.Len(), g.All())
	}
	if !g.HasSPO(NewIRI("http://example.org/goal1"), RDFType, soccerIRI("Goal")) {
		t.Error("missing 'a' triple with custom prefix")
	}
	if !g.HasSPO(NewIRI("http://example.org/goal1"), soccerIRI("inMinute"), NewTypedLiteral("10", XSDInteger)) {
		t.Error("missing typed literal triple")
	}
	if !g.HasSPO(NewIRI("http://example.org/goal1"), soccerIRI("scorerPlayer"), NewLiteral("Messi")) {
		t.Error("missing comma-separated second object")
	}
	if !g.HasSPO(NewBlank("b1"), soccerIRI("narration"), NewLangLiteral(`He "scores"!`, "en")) {
		t.Error("missing escaped lang literal")
	}
}

func TestTurtleReadErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown prefix", `nope:x rdf:type pre:Goal .`},
		{"unterminated IRI", `<http://x rdf:type pre:Goal .`},
		{"unterminated statement", `pre:x rdf:type pre:Goal`},
		{"missing object", `pre:x rdf:type .`},
		{"bare word", `pre:x rdf:type goal .`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadTurtle(strings.NewReader(c.src)); err == nil {
				t.Errorf("ReadTurtle accepted %q", c.src)
			}
		})
	}
}

func TestEndsStatement(t *testing.T) {
	cases := []struct {
		line string
		want bool
	}{
		{`pre:x rdf:type pre:Goal .`, true},
		{`pre:x pre:narration "ends with . inside" ;`, false},
		{`pre:x pre:narration "dot . inside" .`, true},
		{`pre:x pre:v "unterminated .`, false},
		{`pre:x pre:v "escaped \" quote" .`, true},
	}
	for _, c := range cases {
		if got := endsStatement(c.line); got != c.want {
			t.Errorf("endsStatement(%q) = %v, want %v", c.line, got, c.want)
		}
	}
}

// Property: any randomly built graph round-trips through Turtle losslessly.
func TestTurtleRoundTripProperty(t *testing.T) {
	narrations := []string{
		"Eto'o scores!",
		`a "quoted" narration`,
		"tab\tand newline\n inside",
		"minute 45. and beyond",
		"ends with a period.",
	}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewGraph()
		for i := 0; i < int(n%40)+1; i++ {
			tr := randomTriple(r)
			g.Add(tr)
		}
		// Sprinkle in hostile literals.
		for i, s := range narrations {
			g.AddSPO(soccerIRI(fmt.Sprintf("n%d", i)), soccerIRI("narration"), NewLiteral(s))
		}
		var buf bytes.Buffer
		if err := WriteTurtle(&buf, g); err != nil {
			return false
		}
		got, err := ReadTurtle(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Logf("parse error: %v\n%s", err, buf.String())
			return false
		}
		if got.Len() != g.Len() {
			t.Logf("len %d != %d\n%s", got.Len(), g.Len(), buf.String())
			return false
		}
		for _, tr := range g.All() {
			if !got.Has(tr) {
				t.Logf("lost %v", tr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
