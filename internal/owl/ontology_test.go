package owl

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func tinyOntology() *Ontology {
	o := New(rdf.NSSoccer)
	o.AddClass("Event")
	o.AddClass("PositiveEvent", "Event")
	o.AddClass("NegativeEvent", "Event")
	o.AddClass("Goal", "PositiveEvent")
	o.AddClass("Foul", "NegativeEvent")
	o.AddClass("Player")
	o.AddClass("GoalkeeperPlayer", "Player")
	o.AddDisjoint("PositiveEvent", "NegativeEvent")
	o.AddObjectProperty("subjectPlayer")
	o.AddObjectProperty("scorerPlayer", "subjectPlayer")
	o.SetDomain("scorerPlayer", "Goal")
	o.SetRange("scorerPlayer", "Player")
	o.AddDataProperty("inMinute")
	o.SetDomain("inMinute", "Event")
	o.SetRangeIRI("inMinute", rdf.NewIRI(rdf.XSDInteger))
	o.SetFunctional("inMinute")
	o.ValueConstraint("Goal", "scorerPlayer", "Player")
	o.MaxCardinalityConstraint("Goal", "scorerPlayer", 1)
	return o
}

func TestOntologyBuild(t *testing.T) {
	o := tinyOntology()
	if err := o.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := o.Stats()
	if s.Classes != 7 {
		t.Errorf("Classes = %d, want 7", s.Classes)
	}
	if s.ObjectProperties != 2 || s.DataProperties != 1 {
		t.Errorf("properties = %d obj, %d data", s.ObjectProperties, s.DataProperties)
	}
	if s.Properties() != 3 {
		t.Errorf("Properties() = %d, want 3", s.Properties())
	}
	if s.Restrictions != 2 {
		t.Errorf("Restrictions = %d, want 2", s.Restrictions)
	}
	if s.DisjointPairs != 1 {
		t.Errorf("DisjointPairs = %d, want 1", s.DisjointPairs)
	}
}

func TestAddClassMergesParents(t *testing.T) {
	o := New(rdf.NSSoccer)
	o.AddClass("A")
	o.AddClass("B")
	o.AddClass("C", "A")
	o.AddClass("C", "B")
	o.AddClass("C", "A") // duplicate parent must not repeat
	c := o.Class("C")
	if len(c.Parents) != 2 {
		t.Errorf("parents = %v", c.Parents)
	}
}

func TestDirectSubClassesAndRoots(t *testing.T) {
	o := tinyOntology()
	subs := o.DirectSubClasses(o.IRI("Event"))
	if len(subs) != 2 {
		t.Fatalf("subclasses of Event = %v", subs)
	}
	roots := o.Roots()
	if len(roots) != 2 { // Event, Player
		t.Errorf("roots = %v", roots)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Ontology
		want  string
	}{
		{"undeclared parent", func() *Ontology {
			o := New(rdf.NSSoccer)
			o.AddClass("A", "Missing")
			return o
		}, "undeclared parent"},
		{"undeclared property parent", func() *Ontology {
			o := New(rdf.NSSoccer)
			o.AddObjectProperty("p", "missing")
			return o
		}, "undeclared parent"},
		{"kind mismatch", func() *Ontology {
			o := New(rdf.NSSoccer)
			o.AddObjectProperty("op")
			o.AddDataProperty("dp", "op")
			return o
		}, "different kinds"},
		{"undeclared domain", func() *Ontology {
			o := New(rdf.NSSoccer)
			o.AddObjectProperty("p")
			o.SetDomain("p", "Missing")
			return o
		}, "undeclared domain"},
		{"undeclared range", func() *Ontology {
			o := New(rdf.NSSoccer)
			o.AddObjectProperty("p")
			o.SetRange("p", "Missing")
			return o
		}, "undeclared range"},
		{"restriction missing class", func() *Ontology {
			o := New(rdf.NSSoccer)
			o.AddObjectProperty("p")
			o.AddRestriction(Restriction{OnClass: o.IRI("X"), OnProperty: o.IRI("p"), Kind: MaxCardinality, Cardinality: 1})
			return o
		}, "restriction on undeclared class"},
		{"restriction missing filler", func() *Ontology {
			o := New(rdf.NSSoccer)
			o.AddClass("A")
			o.AddObjectProperty("p")
			o.ValueConstraint("A", "p", "Missing")
			return o
		}, "filler"},
		{"negative cardinality", func() *Ontology {
			o := New(rdf.NSSoccer)
			o.AddClass("A")
			o.AddObjectProperty("p")
			o.AddRestriction(Restriction{OnClass: o.IRI("A"), OnProperty: o.IRI("p"), Kind: MaxCardinality, Cardinality: -1})
			return o
		}, "negative cardinality"},
		{"class cycle", func() *Ontology {
			o := New(rdf.NSSoccer)
			o.AddClass("A", "B")
			o.AddClass("B", "A")
			return o
		}, "cycle"},
		{"property cycle", func() *Ontology {
			o := New(rdf.NSSoccer)
			o.AddObjectProperty("p", "q")
			o.AddObjectProperty("q", "p")
			return o
		}, "cycle"},
		{"disjoint undeclared", func() *Ontology {
			o := New(rdf.NSSoccer)
			o.AddClass("A")
			o.AddDisjoint("A", "B")
			return o
		}, "disjoint"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.build().Validate()
			if err == nil {
				t.Fatal("Validate accepted invalid ontology")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %q, want substring %q", err, c.want)
			}
		})
	}
}

func TestTBoxGraph(t *testing.T) {
	o := tinyOntology()
	g := o.TBoxGraph()
	if !g.HasSPO(o.IRI("Goal"), rdf.RDFSSubClassOf, o.IRI("PositiveEvent")) {
		t.Error("missing subClassOf triple")
	}
	if !g.HasSPO(o.IRI("scorerPlayer"), rdf.RDFSSubPropertyOf, o.IRI("subjectPlayer")) {
		t.Error("missing subPropertyOf triple")
	}
	if !g.HasSPO(o.IRI("scorerPlayer"), rdf.RDFSDomain, o.IRI("Goal")) {
		t.Error("missing domain triple")
	}
	if !g.HasSPO(o.IRI("inMinute"), rdf.RDFType, rdf.OWLDataProperty) {
		t.Error("missing datatype property declaration")
	}
	if !g.HasSPO(o.IRI("PositiveEvent"), rdf.OWLDisjointWith, o.IRI("NegativeEvent")) {
		t.Error("missing disjointWith triple")
	}
}

func TestHierarchyString(t *testing.T) {
	o := tinyOntology()
	h := o.HierarchyString()
	if !strings.Contains(h, "Event\n  NegativeEvent\n    Foul") {
		t.Errorf("hierarchy missing indented subtree:\n%s", h)
	}
	if !strings.Contains(h, "  GoalkeeperPlayer") {
		t.Errorf("hierarchy missing GoalkeeperPlayer:\n%s", h)
	}
}

func TestRestrictionKindString(t *testing.T) {
	kinds := map[RestrictionKind]string{
		AllValuesFrom:  "allValuesFrom",
		SomeValuesFrom: "someValuesFrom",
		MaxCardinality: "maxCardinality",
		MinCardinality: "minCardinality",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("String(%d) = %q", k, k.String())
		}
	}
}

func TestModelIndividuals(t *testing.T) {
	o := tinyOntology()
	m := NewModel(o)
	g1 := m.NewIndividual("Goal")
	g2 := m.NewIndividual("Goal")
	if g1 == g2 {
		t.Error("NewIndividual repeated an IRI")
	}
	if g1 != o.IRI("Goal_1") || g2 != o.IRI("Goal_2") {
		t.Errorf("sequential naming broken: %v, %v", g1, g2)
	}
	if !m.Graph.HasSPO(g1, rdf.RDFType, o.IRI("Goal")) {
		t.Error("type not asserted")
	}

	messi := m.NamedIndividual("Lionel_Messi", "Player")
	m.Set(g1, "scorerPlayer", messi)
	m.SetInt(g1, "inMinute", 10)
	m.SetString(g1, "narration", "Messi scores!")

	if m.Get(g1, "scorerPlayer") != messi {
		t.Error("Get scorerPlayer wrong")
	}
	if v, _ := m.Get(g1, "inMinute").Int(); v != 10 {
		t.Error("Get inMinute wrong")
	}
	if got := m.GetAll(g1, "narration"); len(got) != 1 || got[0].Value != "Messi scores!" {
		t.Errorf("GetAll narration = %v", got)
	}
	if got := m.IndividualsOf("Goal"); len(got) != 2 {
		t.Errorf("IndividualsOf(Goal) = %v", got)
	}
	if got := m.Types(messi); len(got) != 1 || got[0] != o.IRI("Player") {
		t.Errorf("Types = %v", got)
	}
}

func TestModelClone(t *testing.T) {
	o := tinyOntology()
	m := NewModel(o)
	m.NewIndividual("Goal")
	c := m.Clone()
	c.NewIndividual("Goal")
	if m.Graph.Len() != 1 {
		t.Error("clone mutation leaked")
	}
	// Counter must have been copied so the clone continues the sequence.
	if !c.Graph.HasSPO(o.IRI("Goal_2"), rdf.RDFType, o.IRI("Goal")) {
		t.Error("clone did not continue individual numbering")
	}
}
