package owl

import (
	"bytes"
	"testing"

	"repro/internal/rdf"
)

func TestFromGraphRoundTrip(t *testing.T) {
	src := tinyOntology()
	back, err := FromGraph(src.TBoxGraph(), rdf.NSSoccer)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	ss, bs := src.Stats(), back.Stats()
	if ss.Classes != bs.Classes || ss.Properties() != bs.Properties() || ss.DisjointPairs != bs.DisjointPairs {
		t.Errorf("stats differ: %+v vs %+v", ss, bs)
	}
	// Hierarchy survives.
	goal := back.Class("Goal")
	if goal == nil || len(goal.Parents) != 1 || goal.Parents[0] != back.IRI("PositiveEvent") {
		t.Errorf("Goal hierarchy lost: %+v", goal)
	}
	sp := back.Property("scorerPlayer")
	if sp == nil || len(sp.Parents) != 1 || sp.Parents[0] != back.IRI("subjectPlayer") {
		t.Errorf("scorerPlayer hierarchy lost: %+v", sp)
	}
	if sp.Domain != back.IRI("Goal") || sp.Range != back.IRI("Player") {
		t.Errorf("scorerPlayer domain/range lost: %+v", sp)
	}
	// Data property kind and datatype range survive.
	im := back.Property("inMinute")
	if im == nil || im.Kind != DataProperty || im.Range != rdf.NewIRI(rdf.XSDInteger) {
		t.Errorf("inMinute lost: %+v", im)
	}
}

func TestFromGraphThroughTurtle(t *testing.T) {
	// Full persistence loop: ontology -> TBox graph -> Turtle -> graph ->
	// ontology.
	src := tinyOntology()
	var buf bytes.Buffer
	if err := rdf.WriteTurtle(&buf, src.TBoxGraph()); err != nil {
		t.Fatal(err)
	}
	g, err := rdf.ReadTurtle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromGraph(g, rdf.NSSoccer)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats().Classes != src.Stats().Classes {
		t.Errorf("classes: %d vs %d", back.Stats().Classes, src.Stats().Classes)
	}
}

func TestFromGraphRejectsForeignNamespace(t *testing.T) {
	g := rdf.NewGraph()
	g.AddSPO(rdf.NewIRI("http://other.example/Thing"), rdf.RDFType, rdf.OWLClass)
	if _, err := FromGraph(g, rdf.NSSoccer); err == nil {
		t.Error("foreign-namespace class accepted")
	}
}

func TestFromGraphDanglingSubProperty(t *testing.T) {
	g := rdf.NewGraph()
	g.AddSPO(rdf.NewIRI(rdf.NSSoccer+"a"), rdf.RDFSSubPropertyOf, rdf.NewIRI(rdf.NSSoccer+"b"))
	if _, err := FromGraph(g, rdf.NSSoccer); err == nil {
		t.Error("dangling subPropertyOf accepted")
	}
}
