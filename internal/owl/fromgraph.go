package owl

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// FromGraph reconstructs an Ontology from a TBox graph produced by
// TBoxGraph, closing the persistence loop for the schema itself: the
// ontology can be serialized as Turtle, shipped, and loaded on another
// node just like the per-match ABox models.
//
// Restrictions are not reified into RDF by TBoxGraph (they live in the
// Ontology value), so a loaded ontology carries declarations, hierarchies,
// domains, ranges and disjointness — everything the query-time components
// need; only the consistency checker loses its restriction checks.
func FromGraph(g *rdf.Graph, namespace string) (*Ontology, error) {
	o := New(namespace)
	local := func(t rdf.Term) (string, error) {
		if !t.IsIRI() || !strings.HasPrefix(t.Value, namespace) {
			return "", fmt.Errorf("owl: term %v outside namespace %s", t, namespace)
		}
		return t.Value[len(namespace):], nil
	}

	// Declarations first, so parents/domains/ranges resolve.
	for _, t := range g.Match(rdf.Wildcard, rdf.RDFType, rdf.OWLClass) {
		name, err := local(t.S)
		if err != nil {
			return nil, err
		}
		o.AddClass(name)
	}
	for _, t := range g.Match(rdf.Wildcard, rdf.RDFType, rdf.OWLObjectProperty) {
		name, err := local(t.S)
		if err != nil {
			return nil, err
		}
		o.AddObjectProperty(name)
	}
	for _, t := range g.Match(rdf.Wildcard, rdf.RDFType, rdf.OWLDataProperty) {
		name, err := local(t.S)
		if err != nil {
			return nil, err
		}
		o.AddDataProperty(name)
	}

	for _, t := range g.Match(rdf.Wildcard, rdf.RDFSSubClassOf, rdf.Wildcard) {
		child, err := local(t.S)
		if err != nil {
			return nil, err
		}
		parent, err := local(t.O)
		if err != nil {
			return nil, err
		}
		o.AddClass(child, parent)
	}
	for _, t := range g.Match(rdf.Wildcard, rdf.RDFSSubPropertyOf, rdf.Wildcard) {
		child, err := local(t.S)
		if err != nil {
			return nil, err
		}
		parent, err := local(t.O)
		if err != nil {
			return nil, err
		}
		p := o.Property(child)
		pp := o.Property(parent)
		if p == nil || pp == nil {
			return nil, fmt.Errorf("owl: subPropertyOf references undeclared property %s or %s", child, parent)
		}
		if p.Kind == ObjectProperty {
			o.AddObjectProperty(child, parent)
		} else {
			o.AddDataProperty(child, parent)
		}
	}
	for _, t := range g.Match(rdf.Wildcard, rdf.RDFSDomain, rdf.Wildcard) {
		prop, err := local(t.S)
		if err != nil {
			return nil, err
		}
		dom, err := local(t.O)
		if err != nil {
			return nil, err
		}
		o.SetDomain(prop, dom)
	}
	for _, t := range g.Match(rdf.Wildcard, rdf.RDFSRange, rdf.Wildcard) {
		prop, err := local(t.S)
		if err != nil {
			return nil, err
		}
		// Ranges may be datatype IRIs outside the namespace.
		if strings.HasPrefix(t.O.Value, namespace) {
			o.SetRange(prop, t.O.Value[len(namespace):])
		} else {
			o.SetRangeIRI(prop, t.O)
		}
	}
	for _, t := range g.Match(rdf.Wildcard, rdf.OWLDisjointWith, rdf.Wildcard) {
		a, err := local(t.S)
		if err != nil {
			return nil, err
		}
		b, err := local(t.O)
		if err != nil {
			return nil, err
		}
		o.AddDisjoint(a, b)
	}
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("owl: loaded ontology invalid: %w", err)
	}
	return o, nil
}
