package owl

import (
	"fmt"

	"repro/internal/rdf"
)

// Model is an ABox: a set of individuals asserted against an ontology,
// stored as an RDF graph. The pipeline keeps one Model per soccer game —
// the paper's scalability measure of keeping "each soccer game separate
// from each other" so inference cost is independent of corpus size.
type Model struct {
	// Ontology is the TBox the individuals are asserted against.
	Ontology *Ontology
	// Graph holds the assertions.
	Graph *rdf.Graph
	// IDPrefix namespaces the sequential individuals minted by
	// NewIndividual. The populator sets it to the match ID so per-match
	// models can be merged into one graph without event-IRI collisions.
	IDPrefix string

	nextID map[string]int
}

// NewModel returns an empty ABox over the given ontology.
func NewModel(o *Ontology) *Model {
	return &Model{Ontology: o, Graph: rdf.NewGraph(), nextID: make(map[string]int)}
}

// NewIndividual mints a fresh individual of the given class (by local name)
// with a deterministic sequential IRI such as pre:Goal_3, and asserts its
// type. Sequential naming keeps serialized models and test snapshots stable.
func (m *Model) NewIndividual(class string) rdf.Term {
	m.nextID[class]++
	ind := m.Ontology.IRI(fmt.Sprintf("%s%s_%d", m.IDPrefix, class, m.nextID[class]))
	m.Graph.AddSPO(ind, rdf.RDFType, m.Ontology.IRI(class))
	return ind
}

// NamedIndividual asserts an individual with an explicit local name and
// class, returning its IRI. Used for entities with natural keys: players,
// teams, matches, stadiums.
func (m *Model) NamedIndividual(name, class string) rdf.Term {
	ind := m.Ontology.IRI(name)
	m.Graph.AddSPO(ind, rdf.RDFType, m.Ontology.IRI(class))
	return ind
}

// Set asserts (ind, prop, value) with prop given by local name.
func (m *Model) Set(ind rdf.Term, prop string, value rdf.Term) {
	m.Graph.AddSPO(ind, m.Ontology.IRI(prop), value)
}

// SetString asserts a plain-literal property value.
func (m *Model) SetString(ind rdf.Term, prop, value string) {
	m.Set(ind, prop, rdf.NewLiteral(value))
}

// SetInt asserts an xsd:integer property value.
func (m *Model) SetInt(ind rdf.Term, prop string, value int) {
	m.Set(ind, prop, rdf.NewInt(value))
}

// Get returns the first value of the property on the individual, or the
// zero term.
func (m *Model) Get(ind rdf.Term, prop string) rdf.Term {
	return m.Graph.FirstObject(ind, m.Ontology.IRI(prop))
}

// GetAll returns every value of the property on the individual.
func (m *Model) GetAll(ind rdf.Term, prop string) []rdf.Term {
	return m.Graph.Objects(ind, m.Ontology.IRI(prop))
}

// Types returns the asserted (and, after inference, inferred) types of the
// individual.
func (m *Model) Types(ind rdf.Term) []rdf.Term {
	return m.Graph.Objects(ind, rdf.RDFType)
}

// IndividualsOf returns the individuals with an explicit rdf:type assertion
// for the class local name.
func (m *Model) IndividualsOf(class string) []rdf.Term {
	return m.Graph.Subjects(rdf.RDFType, m.Ontology.IRI(class))
}

// Clone deep-copies the model (sharing the immutable ontology).
func (m *Model) Clone() *Model {
	ids := make(map[string]int, len(m.nextID))
	for k, v := range m.nextID {
		ids[k] = v
	}
	return &Model{Ontology: m.Ontology, Graph: m.Graph.Clone(), IDPrefix: m.IDPrefix, nextID: ids}
}
