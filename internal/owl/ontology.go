// Package owl provides the ontology model the retrieval system is built
// around: named classes with a subsumption hierarchy, object and data
// properties with their own hierarchy, domains, ranges, disjointness axioms
// and the two kinds of OWL restrictions the paper uses (value constraints
// and cardinality constraints).
//
// The model is deliberately the OWL-DL fragment exercised by the soccer
// ontology of Section 3.2 rather than the whole OWL 2 specification: that is
// the fragment Pellet is asked to reason over in the paper, and it is what
// internal/reasoner implements sound and complete saturation for.
package owl

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// Class is a named concept in the ontology.
type Class struct {
	// IRI identifies the class.
	IRI rdf.Term
	// Parents are the direct named superclasses.
	Parents []rdf.Term
	// Label is an optional human-readable label (defaults to the local name).
	Label string
	// Comment documents the class.
	Comment string
}

// PropertyKind distinguishes object properties from data properties.
type PropertyKind uint8

const (
	// ObjectProperty relates individuals to individuals.
	ObjectProperty PropertyKind = iota
	// DataProperty relates individuals to literal values.
	DataProperty
)

// Property is a named object or data property.
type Property struct {
	IRI  rdf.Term
	Kind PropertyKind
	// Parents are the direct super-properties; the paper's generic
	// subjectPlayer/objectPlayer properties sit at the top of this hierarchy.
	Parents []rdf.Term
	// Domain restricts the class of subjects ("" zero Term = unrestricted).
	Domain rdf.Term
	// Range restricts the class of objects for object properties, or the
	// datatype IRI for data properties.
	Range rdf.Term
	// Functional marks properties with at most one value per subject.
	Functional bool
	Comment    string
}

// RestrictionKind enumerates the OWL restriction constructs of Section 3.5.
type RestrictionKind uint8

const (
	// AllValuesFrom is the value constraint: every value of the property on
	// instances of the class belongs to the filler class (e.g. only
	// goalkeepers are allowed in the goalkeeping position).
	AllValuesFrom RestrictionKind = iota
	// SomeValuesFrom requires at least one value from the filler class.
	SomeValuesFrom
	// MaxCardinality bounds the number of distinct values (e.g. only one
	// goalkeeper is allowed in the game).
	MaxCardinality
	// MinCardinality requires a minimum number of distinct values.
	MinCardinality
)

// String names the restriction kind.
func (k RestrictionKind) String() string {
	switch k {
	case AllValuesFrom:
		return "allValuesFrom"
	case SomeValuesFrom:
		return "someValuesFrom"
	case MaxCardinality:
		return "maxCardinality"
	case MinCardinality:
		return "minCardinality"
	default:
		return fmt.Sprintf("RestrictionKind(%d)", uint8(k))
	}
}

// Restriction constrains a property on a class.
type Restriction struct {
	// OnClass is the class whose instances the restriction applies to.
	OnClass rdf.Term
	// OnProperty is the restricted property.
	OnProperty rdf.Term
	Kind       RestrictionKind
	// Filler is the filler class for the *ValuesFrom kinds.
	Filler rdf.Term
	// Cardinality is the bound for the *Cardinality kinds.
	Cardinality int
}

// Ontology is a mutable TBox: classes, properties, restrictions and
// disjointness axioms.
type Ontology struct {
	// Namespace prefixes every short name passed to the builder methods.
	Namespace string

	classes      map[rdf.Term]*Class
	properties   map[rdf.Term]*Property
	restrictions []Restriction
	disjoint     map[rdf.Term][]rdf.Term
	order        []rdf.Term // class insertion order, for deterministic dumps
	propOrder    []rdf.Term
}

// New returns an empty ontology whose builder methods mint IRIs in the given
// namespace.
func New(namespace string) *Ontology {
	return &Ontology{
		Namespace:  namespace,
		classes:    make(map[rdf.Term]*Class),
		properties: make(map[rdf.Term]*Property),
		disjoint:   make(map[rdf.Term][]rdf.Term),
	}
}

// IRI mints a term in the ontology namespace.
func (o *Ontology) IRI(local string) rdf.Term { return rdf.NewIRI(o.Namespace + local) }

// AddClass declares a class with the given local name and direct parent
// local names. Re-declaring a class merges the parent lists.
func (o *Ontology) AddClass(name string, parents ...string) *Class {
	iri := o.IRI(name)
	c, ok := o.classes[iri]
	if !ok {
		c = &Class{IRI: iri, Label: name}
		o.classes[iri] = c
		o.order = append(o.order, iri)
	}
	for _, p := range parents {
		piri := o.IRI(p)
		if !containsTerm(c.Parents, piri) {
			c.Parents = append(c.Parents, piri)
		}
	}
	return c
}

// AddObjectProperty declares an object property with optional direct
// super-properties.
func (o *Ontology) AddObjectProperty(name string, parents ...string) *Property {
	return o.addProperty(name, ObjectProperty, parents)
}

// AddDataProperty declares a data property with optional direct
// super-properties.
func (o *Ontology) AddDataProperty(name string, parents ...string) *Property {
	return o.addProperty(name, DataProperty, parents)
}

func (o *Ontology) addProperty(name string, kind PropertyKind, parents []string) *Property {
	iri := o.IRI(name)
	p, ok := o.properties[iri]
	if !ok {
		p = &Property{IRI: iri, Kind: kind}
		o.properties[iri] = p
		o.propOrder = append(o.propOrder, iri)
	}
	for _, par := range parents {
		piri := o.IRI(par)
		if !containsTerm(p.Parents, piri) {
			p.Parents = append(p.Parents, piri)
		}
	}
	return p
}

// SetDomain sets the domain class of a property (by local names).
func (o *Ontology) SetDomain(prop, class string) {
	if p := o.properties[o.IRI(prop)]; p != nil {
		p.Domain = o.IRI(class)
	}
}

// SetRange sets the range of a property. For data properties pass a full
// datatype IRI via SetRangeIRI instead.
func (o *Ontology) SetRange(prop, class string) {
	if p := o.properties[o.IRI(prop)]; p != nil {
		p.Range = o.IRI(class)
	}
}

// SetRangeIRI sets the range of a property to an arbitrary IRI, typically an
// XSD datatype for data properties.
func (o *Ontology) SetRangeIRI(prop string, iri rdf.Term) {
	if p := o.properties[o.IRI(prop)]; p != nil {
		p.Range = iri
	}
}

// SetFunctional marks a property functional.
func (o *Ontology) SetFunctional(prop string) {
	if p := o.properties[o.IRI(prop)]; p != nil {
		p.Functional = true
	}
}

// AddDisjoint declares two classes disjoint (symmetric).
func (o *Ontology) AddDisjoint(a, b string) {
	ai, bi := o.IRI(a), o.IRI(b)
	if !containsTerm(o.disjoint[ai], bi) {
		o.disjoint[ai] = append(o.disjoint[ai], bi)
	}
	if !containsTerm(o.disjoint[bi], ai) {
		o.disjoint[bi] = append(o.disjoint[bi], ai)
	}
}

// AddRestriction records a restriction axiom.
func (o *Ontology) AddRestriction(r Restriction) { o.restrictions = append(o.restrictions, r) }

// ValueConstraint is shorthand for an AllValuesFrom restriction by local names.
func (o *Ontology) ValueConstraint(onClass, onProperty, filler string) {
	o.AddRestriction(Restriction{
		OnClass:    o.IRI(onClass),
		OnProperty: o.IRI(onProperty),
		Kind:       AllValuesFrom,
		Filler:     o.IRI(filler),
	})
}

// MaxCardinalityConstraint is shorthand for a MaxCardinality restriction.
func (o *Ontology) MaxCardinalityConstraint(onClass, onProperty string, n int) {
	o.AddRestriction(Restriction{
		OnClass:     o.IRI(onClass),
		OnProperty:  o.IRI(onProperty),
		Kind:        MaxCardinality,
		Cardinality: n,
	})
}

// Class returns the class declared under the local name, or nil.
func (o *Ontology) Class(name string) *Class { return o.classes[o.IRI(name)] }

// ClassByIRI returns the class with the given IRI, or nil.
func (o *Ontology) ClassByIRI(iri rdf.Term) *Class { return o.classes[iri] }

// Property returns the property declared under the local name, or nil.
func (o *Ontology) Property(name string) *Property { return o.properties[o.IRI(name)] }

// PropertyByIRI returns the property with the given IRI, or nil.
func (o *Ontology) PropertyByIRI(iri rdf.Term) *Property { return o.properties[iri] }

// Classes returns all classes in declaration order.
func (o *Ontology) Classes() []*Class {
	out := make([]*Class, 0, len(o.order))
	for _, iri := range o.order {
		out = append(out, o.classes[iri])
	}
	return out
}

// Properties returns all properties in declaration order.
func (o *Ontology) Properties() []*Property {
	out := make([]*Property, 0, len(o.propOrder))
	for _, iri := range o.propOrder {
		out = append(out, o.properties[iri])
	}
	return out
}

// Restrictions returns all restriction axioms.
func (o *Ontology) Restrictions() []Restriction { return o.restrictions }

// DisjointWith returns the classes declared disjoint with the given class.
func (o *Ontology) DisjointWith(iri rdf.Term) []rdf.Term {
	out := append([]rdf.Term(nil), o.disjoint[iri]...)
	rdf.SortTerms(out)
	return out
}

// DirectSubClasses returns the classes whose direct parent list contains c,
// sorted for determinism.
func (o *Ontology) DirectSubClasses(c rdf.Term) []rdf.Term {
	var out []rdf.Term
	for _, iri := range o.order {
		if containsTerm(o.classes[iri].Parents, c) {
			out = append(out, iri)
		}
	}
	rdf.SortTerms(out)
	return out
}

// Roots returns the classes with no declared parents, sorted.
func (o *Ontology) Roots() []rdf.Term {
	var out []rdf.Term
	for _, iri := range o.order {
		if len(o.classes[iri].Parents) == 0 {
			out = append(out, iri)
		}
	}
	rdf.SortTerms(out)
	return out
}

// Validate checks referential integrity: every parent, domain, range,
// restriction class/property and disjointness operand must be declared, and
// the class and property hierarchies must be acyclic. A nil error means the
// ontology is structurally well-formed (consistency of an ABox against it is
// the reasoner's job).
func (o *Ontology) Validate() error {
	for _, c := range o.Classes() {
		for _, p := range c.Parents {
			if _, ok := o.classes[p]; !ok {
				return fmt.Errorf("owl: class %s has undeclared parent %s", c.IRI.LocalName(), p.LocalName())
			}
		}
	}
	for _, p := range o.Properties() {
		for _, par := range p.Parents {
			pp, ok := o.properties[par]
			if !ok {
				return fmt.Errorf("owl: property %s has undeclared parent %s", p.IRI.LocalName(), par.LocalName())
			}
			if pp.Kind != p.Kind {
				return fmt.Errorf("owl: property %s and parent %s have different kinds", p.IRI.LocalName(), par.LocalName())
			}
		}
		if !p.Domain.IsZero() {
			if _, ok := o.classes[p.Domain]; !ok {
				return fmt.Errorf("owl: property %s has undeclared domain %s", p.IRI.LocalName(), p.Domain.LocalName())
			}
		}
		if p.Kind == ObjectProperty && !p.Range.IsZero() {
			if _, ok := o.classes[p.Range]; !ok {
				return fmt.Errorf("owl: property %s has undeclared range %s", p.IRI.LocalName(), p.Range.LocalName())
			}
		}
	}
	for _, r := range o.restrictions {
		if _, ok := o.classes[r.OnClass]; !ok {
			return fmt.Errorf("owl: restriction on undeclared class %s", r.OnClass.LocalName())
		}
		if _, ok := o.properties[r.OnProperty]; !ok {
			return fmt.Errorf("owl: restriction on undeclared property %s", r.OnProperty.LocalName())
		}
		if (r.Kind == AllValuesFrom || r.Kind == SomeValuesFrom) && o.classes[r.Filler] == nil {
			return fmt.Errorf("owl: restriction filler %s undeclared", r.Filler.LocalName())
		}
		if (r.Kind == MaxCardinality || r.Kind == MinCardinality) && r.Cardinality < 0 {
			return fmt.Errorf("owl: negative cardinality on %s", r.OnProperty.LocalName())
		}
	}
	for a, bs := range o.disjoint {
		if _, ok := o.classes[a]; !ok {
			return fmt.Errorf("owl: disjointness on undeclared class %s", a.LocalName())
		}
		for _, b := range bs {
			if _, ok := o.classes[b]; !ok {
				return fmt.Errorf("owl: disjointness with undeclared class %s", b.LocalName())
			}
		}
	}
	if cyc := o.findClassCycle(); cyc != "" {
		return fmt.Errorf("owl: class hierarchy cycle through %s", cyc)
	}
	if cyc := o.findPropertyCycle(); cyc != "" {
		return fmt.Errorf("owl: property hierarchy cycle through %s", cyc)
	}
	return nil
}

func (o *Ontology) findClassCycle() string {
	return findCycle(o.order, func(t rdf.Term) []rdf.Term { return o.classes[t].Parents })
}

func (o *Ontology) findPropertyCycle() string {
	return findCycle(o.propOrder, func(t rdf.Term) []rdf.Term { return o.properties[t].Parents })
}

func findCycle(nodes []rdf.Term, parents func(rdf.Term) []rdf.Term) string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[rdf.Term]int, len(nodes))
	var visit func(rdf.Term) string
	visit = func(n rdf.Term) string {
		switch color[n] {
		case gray:
			return n.LocalName()
		case black:
			return ""
		}
		color[n] = gray
		for _, p := range parents(n) {
			if c := visit(p); c != "" {
				return c
			}
		}
		color[n] = black
		return ""
	}
	for _, n := range nodes {
		if c := visit(n); c != "" {
			return c
		}
	}
	return ""
}

// TBoxGraph emits the ontology as RDF triples (declarations, subsumptions,
// domains, ranges and disjointness). Restrictions are not reified into RDF;
// the reasoner consumes them from the Ontology value directly.
func (o *Ontology) TBoxGraph() *rdf.Graph {
	g := rdf.NewGraph()
	for _, c := range o.Classes() {
		g.AddSPO(c.IRI, rdf.RDFType, rdf.OWLClass)
		for _, p := range c.Parents {
			g.AddSPO(c.IRI, rdf.RDFSSubClassOf, p)
		}
		if c.Comment != "" {
			g.AddSPO(c.IRI, rdf.RDFSComment, rdf.NewLiteral(c.Comment))
		}
	}
	for _, p := range o.Properties() {
		kind := rdf.OWLObjectProperty
		if p.Kind == DataProperty {
			kind = rdf.OWLDataProperty
		}
		g.AddSPO(p.IRI, rdf.RDFType, kind)
		for _, par := range p.Parents {
			g.AddSPO(p.IRI, rdf.RDFSSubPropertyOf, par)
		}
		if !p.Domain.IsZero() {
			g.AddSPO(p.IRI, rdf.RDFSDomain, p.Domain)
		}
		if !p.Range.IsZero() {
			g.AddSPO(p.IRI, rdf.RDFSRange, p.Range)
		}
	}
	for a, bs := range o.disjoint {
		for _, b := range bs {
			g.AddSPO(a, rdf.OWLDisjointWith, b)
		}
	}
	return g
}

// Stats summarizes the ontology size, matching the paper's "79 concepts and
// 95 properties" report for the soccer ontology.
type Stats struct {
	Classes          int
	ObjectProperties int
	DataProperties   int
	Restrictions     int
	DisjointPairs    int
}

// Stats computes the ontology size summary.
func (o *Ontology) Stats() Stats {
	s := Stats{Classes: len(o.classes), Restrictions: len(o.restrictions)}
	for _, p := range o.properties {
		if p.Kind == ObjectProperty {
			s.ObjectProperties++
		} else {
			s.DataProperties++
		}
	}
	pairs := 0
	for _, bs := range o.disjoint {
		pairs += len(bs)
	}
	s.DisjointPairs = pairs / 2
	return s
}

// Properties total.
func (s Stats) Properties() int { return s.ObjectProperties + s.DataProperties }

// HierarchyString renders the class hierarchy as an indented tree in the
// style of the paper's Fig. 2, for cmd/socontology and documentation.
func (o *Ontology) HierarchyString() string {
	var b []byte
	var walk func(c rdf.Term, depth int)
	walk = func(c rdf.Term, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, "  "...)
		}
		b = append(b, c.LocalName()...)
		b = append(b, '\n')
		for _, sub := range o.DirectSubClasses(c) {
			walk(sub, depth+1)
		}
	}
	roots := o.Roots()
	sort.Slice(roots, func(i, j int) bool { return roots[i].Value < roots[j].Value })
	for _, r := range roots {
		walk(r, 0)
	}
	return string(b)
}

func containsTerm(ts []rdf.Term, t rdf.Term) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}
