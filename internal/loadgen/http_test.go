package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
)

// TestHTTPTarget pins the /v1 wire contract the HTTP target depends on:
// search classes hit /v1/search and read total + degraded from the
// envelope, suggest probes hit /v1/suggest, and non-200s surface as
// errors (so the harness counts them) rather than zero-hit successes.
func TestHTTPTarget(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/search":
			if r.URL.Query().Get("q") == "" {
				http.Error(w, "missing q", http.StatusBadRequest)
				return
			}
			w.Write([]byte(`{"total": 7, "degraded": {"missingShards": [2]}}`))
		case "/v1/suggest":
			w.Write([]byte(`{"didYouMean": "goal"}`))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	tgt := &HTTPTarget{BaseURL: srv.URL, Limit: 5}
	ctx := context.Background()
	out, err := tgt.Do(ctx, Query{Class: ClassKeyword, Text: "messi goal"})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if out.Hits != 7 || !out.Degraded {
		t.Fatalf("search outcome %+v, want 7 hits degraded", out)
	}
	if _, err := tgt.Do(ctx, Query{Class: ClassSuggest, Text: "gaol"}); err != nil {
		t.Fatalf("suggest: %v", err)
	}
	if _, err := tgt.Do(ctx, Query{Class: ClassKeyword, Text: ""}); err == nil {
		t.Fatal("400 response did not surface as an error")
	}
}

// TestHTTPTargetLive drives a real socserve when LOADGEN_LIVE_URL is set
// (e.g. http://127.0.0.1:8090) — the end-to-end check that the harness
// and the server agree on the envelope.
func TestHTTPTargetLive(t *testing.T) {
	base := os.Getenv("LOADGEN_LIVE_URL")
	if base == "" {
		t.Skip("set LOADGEN_LIVE_URL to run against a live server")
	}
	queries := []Query{
		{Class: ClassKeyword, Text: "messi goal"},
		{Class: ClassPhrase, Text: `"yellow card" chelsea`},
		{Class: ClassField, Text: "event:goal barcelona"},
		{Class: ClassFuzzy, Text: "mesi~ goal"},
		{Class: ClassSuggest, Text: "gaol"},
	}
	res, err := Run(context.Background(), &HTTPTarget{BaseURL: base, Limit: 10}, Config{
		Workers: 2, Requests: 100, Warmup: 10, Seed: 1, Queries: queries,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors against %s", res.Errors, base)
	}
	t.Logf("live: %d requests, %.0f qps, p50 %v p99 %v", res.Requests, res.QPS, res.P50, res.P99)
}
