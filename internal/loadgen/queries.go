// Package loadgen is the closed-loop load harness of the scale-truth
// subsystem: it generates a realistic, Zipf-skewed query workload from a
// corpus's own vocabulary, drives it against a search target at fixed
// concurrency, and checks the measured latency/throughput/error profile
// against declarative SLO assertions.
//
// The package is deliberately decoupled from how the answer is produced:
// a Target is anything that can execute one Query, and two are provided —
// EngineTarget over the in-process sharded engine and HTTPTarget over the
// /v1 JSON API — so the same workload measures both the kernel and the
// full server path.
package loadgen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/corpus"
)

// Class names one query template family. The mix mirrors the query-log
// shape real search frontends see: mostly plain keywords, a steady tail
// of quoted phrases, fielded power-user queries, fuzzy typo matches and
// spell-correction probes.
type Class string

const (
	// ClassKeyword is a plain multi-token keyword query.
	ClassKeyword Class = "keyword"
	// ClassPhrase carries a quoted phrase ("yellow card" chelsea).
	ClassPhrase Class = "phrase"
	// ClassField restricts a term to one index field (subjectPlayer:messi).
	ClassField Class = "field"
	// ClassFuzzy carries a misspelled token with the ~ edit-distance
	// operator (mesi~ goal).
	ClassFuzzy Class = "fuzzy"
	// ClassSuggest is a spell-correction probe served by Engine.Suggest /
	// GET /v1/suggest rather than the search path.
	ClassSuggest Class = "suggest"
)

// Query is one workload item: the class it was templated from and the
// query text to execute.
type Query struct {
	Class Class
	Text  string
}

// Vocabulary is the term pool queries are templated from. Drawing it from
// the corpus generator's own universe guarantees a realistic hit profile:
// hot teams appear in hot queries, and every player queried actually
// exists somewhere in the index.
type Vocabulary struct {
	// Teams lists team names in popularity-rank order (hottest first), as
	// corpus.Universe orders them.
	Teams []string
	// Players lists player surnames, grouped by team in team-rank order.
	Players []string
	// Events lists event words usable as bare keywords.
	Events []string
	// Phrases lists multi-word event phrases for the quoted-phrase class.
	Phrases []string
}

// VocabFromUniverse extracts the query vocabulary from a generator's
// league. Team order (and therefore player order) follows the universe's
// popularity rank, so low vocabulary indices are the corpus's hot head.
func VocabFromUniverse(u *corpus.Universe) Vocabulary {
	v := Vocabulary{
		Events:  []string{"goal", "foul", "offside", "save", "penalty", "corner", "tackle", "header"},
		Phrases: []string{"yellow card", "red card", "free kick", "corner kick", "own goal", "header goal"},
	}
	for _, t := range u.Teams {
		v.Teams = append(v.Teams, t.Name)
		for _, p := range t.Players {
			v.Players = append(v.Players, p.Short)
		}
	}
	return v
}

// DefaultMix is the standard class weighting (parts, not percents):
// keyword-dominant with a realistic advanced-syntax tail.
var DefaultMix = map[Class]int{
	ClassKeyword: 50,
	ClassPhrase:  15,
	ClassField:   15,
	ClassFuzzy:   10,
	ClassSuggest: 10,
}

// GenerateQueries templates n queries from vocab with the given class mix
// (nil means DefaultMix). Generation is deterministic in (vocab, mix, n,
// seed). Vocabulary draws are head-biased — low-rank teams and players
// are picked more often — so the emitted list is itself a popularity
// ranking: a Zipf selector over its indices (as Run applies) yields a
// workload whose hot queries hit hot entities, the profile a query cache
// actually faces.
func GenerateQueries(vocab Vocabulary, mix map[Class]int, n int, seed int64) []Query {
	if mix == nil {
		mix = DefaultMix
	}
	rng := rand.New(rand.NewSource(seed))
	// Flatten the mix into a weighted class lottery. Iterate classes in a
	// fixed order — map iteration order would break determinism.
	var lottery []Class
	for _, c := range []Class{ClassKeyword, ClassPhrase, ClassField, ClassFuzzy, ClassSuggest} {
		for i := 0; i < mix[c]; i++ {
			lottery = append(lottery, c)
		}
	}
	if len(lottery) == 0 || len(vocab.Players) == 0 || len(vocab.Teams) == 0 {
		return nil
	}
	out := make([]Query, 0, n)
	for i := 0; i < n; i++ {
		c := lottery[rng.Intn(len(lottery))]
		out = append(out, Query{Class: c, Text: template(rng, c, vocab)})
	}
	return out
}

// headPick biases selection toward low indices (the popularity head):
// squaring a uniform [0,1) draw halves the median index, mirroring the
// corpus's own Zipf team skew without needing a second Zipf source.
func headPick(rng *rand.Rand, n int) int {
	f := rng.Float64()
	return int(f * f * float64(n))
}

func pickPlayer(rng *rand.Rand, v Vocabulary) string {
	return strings.ToLower(v.Players[headPick(rng, len(v.Players))])
}

func pickTeam(rng *rand.Rand, v Vocabulary) string {
	return strings.ToLower(v.Teams[headPick(rng, len(v.Teams))])
}

func pickEvent(rng *rand.Rand, v Vocabulary) string {
	return v.Events[rng.Intn(len(v.Events))]
}

// template renders one query of class c.
func template(rng *rand.Rand, c Class, v Vocabulary) string {
	switch c {
	case ClassPhrase:
		phrase := v.Phrases[rng.Intn(len(v.Phrases))]
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("%q %s", phrase, pickTeam(rng, v))
		}
		return fmt.Sprintf("%q %s", phrase, pickPlayer(rng, v))
	case ClassField:
		switch rng.Intn(3) {
		case 0:
			return "subjectPlayer:" + pickPlayer(rng, v) + " event:" + pickEvent(rng, v)
		case 1:
			return "subjectTeam:" + firstWord(pickTeam(rng, v)) + " event:" + pickEvent(rng, v)
		default:
			return "event:" + pickEvent(rng, v) + " " + pickPlayer(rng, v)
		}
	case ClassFuzzy:
		return misspell(rng, pickPlayer(rng, v)) + "~ " + pickEvent(rng, v)
	case ClassSuggest:
		if rng.Intn(2) == 0 {
			return misspell(rng, pickPlayer(rng, v)) + " " + pickEvent(rng, v)
		}
		return pickPlayer(rng, v) + " " + misspell(rng, pickEvent(rng, v))
	default: // ClassKeyword
		switch rng.Intn(4) {
		case 0:
			return pickPlayer(rng, v) + " " + pickEvent(rng, v)
		case 1:
			return pickTeam(rng, v) + " " + pickEvent(rng, v)
		case 2:
			return pickPlayer(rng, v) + " " + pickTeam(rng, v)
		default:
			return pickEvent(rng, v)
		}
	}
}

// firstWord truncates a multi-word team name to its leading token —
// field syntax binds field:term to a single term.
func firstWord(s string) string {
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[:i]
	}
	return s
}

// misspell introduces one deterministic single-character edit — the
// typo shape the fuzzy operator and the suggester are built to absorb.
func misspell(rng *rand.Rand, w string) string {
	r := []rune(w)
	if len(r) < 3 {
		return w + "x"
	}
	switch rng.Intn(3) {
	case 0: // drop an interior rune
		i := 1 + rng.Intn(len(r)-2)
		return string(r[:i]) + string(r[i+1:])
	case 1: // double an interior rune
		i := 1 + rng.Intn(len(r)-2)
		return string(r[:i]) + string(r[i]) + string(r[i:])
	default: // swap two adjacent interior runes
		i := 1 + rng.Intn(len(r)-2)
		r[i-1], r[i] = r[i], r[i-1]
		return string(r)
	}
}
