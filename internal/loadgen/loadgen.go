package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

// Outcome is what a Target reports about one executed query.
type Outcome struct {
	// Hits is how many results came back (0 for suggest probes).
	Hits int
	// Degraded marks an answer merged without every shard.
	Degraded bool
}

// Target executes one query. Implementations must be safe for concurrent
// use: Run calls Do from every worker goroutine.
type Target interface {
	Do(ctx context.Context, q Query) (Outcome, error)
}

// EngineTarget drives the in-process sharded engine: search classes go
// through Engine.Search (the same entry point the HTTP layer uses),
// suggest probes through Engine.Suggest.
type EngineTarget struct {
	Eng *shard.Engine
	// Limit caps each answer; 0 means 10, matching the /v1 default.
	Limit int
	// Deadline, when positive, bounds each scatter — shards that miss it
	// produce a degraded (counted, not failed) answer.
	Deadline time.Duration
	// NoCache bypasses the query cache, forcing every request cold.
	NoCache bool
}

func (t *EngineTarget) Do(ctx context.Context, q Query) (Outcome, error) {
	if q.Class == ClassSuggest {
		t.Eng.Suggest(q.Text)
		return Outcome{}, nil
	}
	if t.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t.Deadline)
		defer cancel()
	}
	limit := t.Limit
	if limit <= 0 {
		limit = 10
	}
	res, err := t.Eng.Search(ctx, q.Text, shard.SearchOptions{Limit: limit, NoCache: t.NoCache})
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Hits: len(res.Hits), Degraded: res.Report.Degraded}, nil
}

// HTTPTarget drives a running socserve over the versioned JSON API:
// search classes hit /v1/search, suggest probes /v1/suggest. Degradation
// is read from the envelope, so the HTTP harness counts exactly what the
// in-process one does.
type HTTPTarget struct {
	// BaseURL is the server root, e.g. "http://localhost:8090".
	BaseURL string
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
	// Limit caps each answer; 0 uses the server default.
	Limit int
}

func (t *HTTPTarget) Do(ctx context.Context, q Query) (Outcome, error) {
	c := t.Client
	if c == nil {
		c = http.DefaultClient
	}
	path := "/v1/search"
	if q.Class == ClassSuggest {
		path = "/v1/suggest"
	}
	u := t.BaseURL + path + "?q=" + url.QueryEscape(q.Text)
	if t.Limit > 0 && q.Class != ClassSuggest {
		u += fmt.Sprintf("&limit=%d", t.Limit)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return Outcome{}, err
	}
	resp, err := c.Do(req)
	if err != nil {
		return Outcome{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Outcome{}, fmt.Errorf("loadgen: %s: HTTP %d", path, resp.StatusCode)
	}
	var env struct {
		Total    int `json:"total"`
		Degraded *struct {
			MissingShards []int `json:"missingShards"`
		} `json:"degraded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return Outcome{}, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	return Outcome{Hits: env.Total, Degraded: env.Degraded != nil}, nil
}

// Config shapes one closed-loop run. Zero values select defaults, so only
// Queries is mandatory.
type Config struct {
	// Workers is the closed-loop concurrency: each worker issues its next
	// request the moment the previous one answers. <= 0 means 4.
	Workers int
	// Requests is the measured request count (across all workers);
	// <= 0 means 1000.
	Requests int
	// Warmup requests run first and are excluded from every statistic —
	// they fill caches and page the index hot. < 0 means 0.
	Warmup int
	// ZipfS is the query-popularity exponent (> 1) applied over Queries
	// by index — low indices are the hot head. <= 1 means 1.1.
	ZipfS float64
	// Seed drives query selection; worker w draws from Seed + w, so equal
	// configs replay the identical per-worker request sequence.
	Seed int64
	// Queries is the workload; GenerateQueries builds a realistic one.
	Queries []Query
	// Hist, when non-nil, also receives every measured latency — wiring
	// the run into an obs registry for Prometheus exposition.
	Hist *obs.Histogram
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.1
	}
	return c
}

// Result is one run's measured profile. Latency quantiles are computed
// over the raw measured samples (not histogram buckets), so p999 is exact
// for the sample size taken.
type Result struct {
	// Requests is the number of measured (post-warmup) requests.
	Requests int `json:"requests"`
	// Errors counts failed requests (transport errors, timeouts
	// surfacing as errors, non-200s).
	Errors int `json:"errors"`
	// Degraded counts answers merged without every shard.
	Degraded int `json:"degraded"`
	// Elapsed is the wall time of the measured phase.
	Elapsed time.Duration `json:"elapsedNs"`
	// QPS is Requests / Elapsed.
	QPS float64 `json:"qps"`
	// Latency quantiles over the measured samples.
	P50  time.Duration `json:"p50Ns"`
	P95  time.Duration `json:"p95Ns"`
	P99  time.Duration `json:"p99Ns"`
	P999 time.Duration `json:"p999Ns"`
	// ByClass counts measured requests per query class.
	ByClass map[Class]int `json:"byClass"`
}

// ErrorRate is Errors / Requests in [0, 1].
func (r *Result) ErrorRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Requests)
}

// DegradedRate is Degraded / Requests in [0, 1].
func (r *Result) DegradedRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Degraded) / float64(r.Requests)
}

// Run drives the closed loop: cfg.Workers goroutines each pull the next
// global sequence number, pick a query by Zipf rank, execute it against
// target and record the latency. The first cfg.Warmup requests are
// excluded from all statistics; the run ends when Warmup+Requests
// requests have completed or ctx is cancelled (returning ctx's error
// alongside the partial result).
func Run(ctx context.Context, target Target, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Queries) == 0 {
		return nil, fmt.Errorf("loadgen: no queries")
	}
	total := int64(cfg.Warmup + cfg.Requests)

	type workerStats struct {
		samples  []time.Duration
		errors   int
		degraded int
		byClass  map[Class]int
	}
	var (
		seq           atomic.Int64
		measuredStart atomic.Int64 // UnixNano of the first measured request
		wg            sync.WaitGroup
		stats         = make([]workerStats, cfg.Workers)
	)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			st.byClass = map[Class]int{}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cfg.Queries)-1))
			for {
				n := seq.Add(1)
				if n > total || ctx.Err() != nil {
					return
				}
				measured := n > int64(cfg.Warmup)
				if measured {
					measuredStart.CompareAndSwap(0, time.Now().UnixNano())
				}
				q := cfg.Queries[zipf.Uint64()]
				start := time.Now()
				out, err := target.Do(ctx, q)
				d := time.Since(start)
				if !measured {
					continue
				}
				st.samples = append(st.samples, d)
				st.byClass[q.Class]++
				if err != nil {
					st.errors++
				} else if out.Degraded {
					st.degraded++
				}
				cfg.Hist.ObserveDuration(d)
			}
		}(w)
	}
	wg.Wait()

	res := &Result{ByClass: map[Class]int{}}
	var samples []time.Duration
	for i := range stats {
		samples = append(samples, stats[i].samples...)
		res.Errors += stats[i].errors
		res.Degraded += stats[i].degraded
		for c, n := range stats[i].byClass {
			res.ByClass[c] += n
		}
	}
	res.Requests = len(samples)
	if t0 := measuredStart.Load(); t0 != 0 {
		res.Elapsed = time.Since(time.Unix(0, t0))
	}
	if res.Elapsed > 0 {
		res.QPS = float64(res.Requests) / res.Elapsed.Seconds()
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	res.P50 = quantileDur(samples, 0.50)
	res.P95 = quantileDur(samples, 0.95)
	res.P99 = quantileDur(samples, 0.99)
	res.P999 = quantileDur(samples, 0.999)
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// quantileDur interpolates the q-quantile over sorted samples — the
// continuous (type-7) estimate, exact at the sample resolution.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i] + time.Duration(frac*float64(sorted[i+1]-sorted[i]))
}
