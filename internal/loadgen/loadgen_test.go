package loadgen

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/semindex"
	"repro/internal/shard"
)

func testVocab(t *testing.T) Vocabulary {
	t.Helper()
	return VocabFromUniverse(corpus.NewUniverse(32, 1))
}

func TestGenerateQueriesDeterministicAndWellFormed(t *testing.T) {
	v := testVocab(t)
	a := GenerateQueries(v, nil, 400, 42)
	b := GenerateQueries(v, nil, 400, 42)
	if len(a) != 400 || len(b) != 400 {
		t.Fatalf("lengths: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d differs for equal seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	if c := GenerateQueries(v, nil, 400, 43); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Fatalf("different seeds produced the same opening queries")
	}
	seen := map[Class]int{}
	for _, q := range a {
		seen[q.Class]++
		switch q.Class {
		case ClassPhrase:
			if !strings.Contains(q.Text, `"`) {
				t.Errorf("phrase query without quotes: %q", q.Text)
			}
		case ClassField:
			if !strings.Contains(q.Text, ":") {
				t.Errorf("field query without a field: %q", q.Text)
			}
		case ClassFuzzy:
			if !strings.Contains(q.Text, "~") {
				t.Errorf("fuzzy query without ~: %q", q.Text)
			}
		}
	}
	for _, c := range []Class{ClassKeyword, ClassPhrase, ClassField, ClassFuzzy, ClassSuggest} {
		if seen[c] == 0 {
			t.Errorf("class %s absent from a 400-query default mix", c)
		}
	}
}

func TestGenerateQueriesRespectsMix(t *testing.T) {
	v := testVocab(t)
	qs := GenerateQueries(v, map[Class]int{ClassKeyword: 1}, 50, 7)
	for _, q := range qs {
		if q.Class != ClassKeyword {
			t.Fatalf("keyword-only mix emitted %s query %q", q.Class, q.Text)
		}
	}
}

func TestParseSLOs(t *testing.T) {
	slos, err := ParseSLOs("p99 < 5ms, error_rate<1% ; qps>200, degraded_rate<0.02")
	if err != nil {
		t.Fatalf("ParseSLOs: %v", err)
	}
	want := []SLO{
		{Metric: "p99", Op: '<', Threshold: 0.005},
		{Metric: "error_rate", Op: '<', Threshold: 0.01},
		{Metric: "qps", Op: '>', Threshold: 200},
		{Metric: "degraded_rate", Op: '<', Threshold: 0.02},
	}
	if len(slos) != len(want) {
		t.Fatalf("got %d SLOs, want %d", len(slos), len(want))
	}
	for i, w := range want {
		g := slos[i]
		if g.Metric != w.Metric || g.Op != w.Op || g.Threshold != w.Threshold {
			t.Errorf("SLO %d: got %+v, want %+v", i, g, w)
		}
	}
	if slos, err := ParseSLOs(""); err != nil || len(slos) != 0 {
		t.Errorf("empty input: got %v, %v", slos, err)
	}
	for _, bad := range []string{"p99", "latency<5ms", "p99<fast", "error_rate<oops", "qps>-3"} {
		if _, err := ParseSLOs(bad); err == nil {
			t.Errorf("ParseSLOs(%q): want error", bad)
		}
	}
}

func TestCheckSLOs(t *testing.T) {
	res := &Result{
		Requests: 1000, Errors: 25, Degraded: 10,
		QPS: 150,
		P50: 2 * time.Millisecond, P99: 8 * time.Millisecond,
	}
	slos, err := ParseSLOs("p99<5ms, p50<5ms, error_rate<1%, qps>100, degraded_rate<5%")
	if err != nil {
		t.Fatal(err)
	}
	vio := CheckSLOs(res, slos)
	if len(vio) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(vio), vio)
	}
	if vio[0].SLO.Metric != "p99" || vio[1].SLO.Metric != "error_rate" {
		t.Fatalf("wrong violations: %v", vio)
	}
	if s := vio[0].String(); !strings.Contains(s, "p99") || !strings.Contains(s, "5ms") {
		t.Errorf("violation string %q lacks metric or bound", s)
	}
}

// TestRunAgainstEngine drives the full closed loop against a small real
// engine: the result must account for every measured request, stay
// error-free, touch every query class and produce ordered quantiles.
func TestRunAgainstEngine(t *testing.T) {
	g := corpus.New(corpus.Spec{TargetDocs: 1200, Seed: 3, Teams: 16})
	eng, err := shard.BuildStream(nil, semindex.FullInf, g, shard.Options{Shards: 2, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("BuildStream: %v", err)
	}
	queries := GenerateQueries(VocabFromUniverse(g.Universe()), nil, 200, 5)
	cfg := Config{
		Workers:  4,
		Requests: 400,
		Warmup:   50,
		Seed:     9,
		Queries:  queries,
	}
	res, err := Run(context.Background(), &EngineTarget{Eng: eng}, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Requests != 400 {
		t.Fatalf("measured %d requests, want 400", res.Requests)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors against an undeadlined in-process engine", res.Errors)
	}
	if res.QPS <= 0 || res.Elapsed <= 0 {
		t.Fatalf("no throughput measured: qps=%f elapsed=%v", res.QPS, res.Elapsed)
	}
	if !(res.P50 <= res.P95 && res.P95 <= res.P99 && res.P99 <= res.P999) {
		t.Fatalf("quantiles out of order: %v %v %v %v", res.P50, res.P95, res.P99, res.P999)
	}
	if res.P50 <= 0 {
		t.Fatalf("p50 is zero")
	}
	classTotal := 0
	for _, n := range res.ByClass {
		classTotal += n
	}
	if classTotal != res.Requests {
		t.Fatalf("class counts sum to %d, want %d", classTotal, res.Requests)
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	g := corpus.New(corpus.Spec{TargetDocs: 600, Seed: 4, Teams: 16})
	eng, err := shard.BuildStream(nil, semindex.Trad, g, shard.Options{Shards: 2})
	if err != nil {
		t.Fatalf("BuildStream: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, &EngineTarget{Eng: eng}, Config{
		Requests: 1_000_000, // would take minutes if cancellation were ignored
		Queries:  GenerateQueries(VocabFromUniverse(g.Universe()), nil, 50, 1),
	})
	if err == nil {
		t.Fatalf("cancelled run returned no error (result %+v)", res)
	}
}
