package loadgen

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// SLO is one declarative assertion over a Result, parsed from the textual
// form the CLI and CI use: "p99 < 5ms", "error_rate < 1%", "qps > 200".
//
// Metrics: p50 / p95 / p99 / p999 (durations), error_rate /
// degraded_rate (percent or fraction), qps (number). Operators: < and >.
type SLO struct {
	// Metric is the normalized metric name (e.g. "p99").
	Metric string
	// Op is '<' or '>'.
	Op byte
	// Threshold is the bound in canonical units: seconds for latency
	// metrics, a [0,1] fraction for rates, plain number for qps.
	Threshold float64
	// Raw preserves the original text for reporting.
	Raw string
}

// ParseSLOs parses a comma- or semicolon-separated assertion list.
// Empty input yields no SLOs (nothing asserted), not an error.
func ParseSLOs(s string) ([]SLO, error) {
	var out []SLO
	for _, part := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ';' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		slo, err := parseSLO(part)
		if err != nil {
			return nil, err
		}
		out = append(out, slo)
	}
	return out, nil
}

func parseSLO(s string) (SLO, error) {
	i := strings.IndexAny(s, "<>")
	if i < 0 {
		return SLO{}, fmt.Errorf("loadgen: SLO %q: want metric<bound or metric>bound", s)
	}
	metric := strings.ToLower(strings.TrimSpace(s[:i]))
	bound := strings.TrimSpace(s[i+1:])
	slo := SLO{Metric: metric, Op: s[i], Raw: s}
	switch metric {
	case "p50", "p95", "p99", "p999":
		d, err := time.ParseDuration(bound)
		if err != nil {
			return SLO{}, fmt.Errorf("loadgen: SLO %q: bad duration %q: %w", s, bound, err)
		}
		slo.Threshold = d.Seconds()
	case "error_rate", "degraded_rate":
		pct := strings.HasSuffix(bound, "%")
		v, err := strconv.ParseFloat(strings.TrimSuffix(bound, "%"), 64)
		if err != nil || v < 0 {
			return SLO{}, fmt.Errorf("loadgen: SLO %q: bad rate %q", s, bound)
		}
		if pct {
			v /= 100
		}
		slo.Threshold = v
	case "qps":
		v, err := strconv.ParseFloat(bound, 64)
		if err != nil || v < 0 {
			return SLO{}, fmt.Errorf("loadgen: SLO %q: bad qps %q", s, bound)
		}
		slo.Threshold = v
	default:
		return SLO{}, fmt.Errorf("loadgen: SLO %q: unknown metric %q (want p50|p95|p99|p999|error_rate|degraded_rate|qps)", s, metric)
	}
	return slo, nil
}

// value extracts the SLO's metric from a result in the threshold's units.
func (s SLO) value(r *Result) float64 {
	switch s.Metric {
	case "p50":
		return r.P50.Seconds()
	case "p95":
		return r.P95.Seconds()
	case "p99":
		return r.P99.Seconds()
	case "p999":
		return r.P999.Seconds()
	case "error_rate":
		return r.ErrorRate()
	case "degraded_rate":
		return r.DegradedRate()
	case "qps":
		return r.QPS
	}
	return 0
}

// Violation reports one failed assertion.
type Violation struct {
	SLO    SLO     `json:"slo"`
	Actual float64 `json:"actual"`
}

func (v Violation) String() string {
	format := func(x float64) string {
		switch v.SLO.Metric {
		case "p50", "p95", "p99", "p999":
			return time.Duration(x * float64(time.Second)).Round(time.Microsecond).String()
		case "error_rate", "degraded_rate":
			return fmt.Sprintf("%.2f%%", x*100)
		default:
			return fmt.Sprintf("%.1f", x)
		}
	}
	return fmt.Sprintf("%s = %s, want %c %s",
		v.SLO.Metric, format(v.Actual), v.SLO.Op, format(v.SLO.Threshold))
}

// CheckSLOs evaluates every assertion against r and returns the
// violations (empty means all SLOs hold).
func CheckSLOs(r *Result, slos []SLO) []Violation {
	var out []Violation
	for _, s := range slos {
		actual := s.value(r)
		ok := actual < s.Threshold
		if s.Op == '>' {
			ok = actual > s.Threshold
		}
		if !ok {
			out = append(out, Violation{SLO: s, Actual: actual})
		}
	}
	return out
}
