// Package qcache is the query-result cache behind the engine's hot path:
// a dependency-free, concurrency-safe LRU keyed on the normalized query
// shape, sharded into independently-locked segments so concurrent
// lookups on different keys never contend, with byte-capacity accounting
// so the cache is bounded by memory, not entry count.
//
// Correctness is carried by epoch validation, not TTLs: every entry
// stores the engine epoch it was computed under, and Get only returns an
// entry whose epoch matches the caller's current one. An ingest (or any
// statistics exchange) bumps the epoch, so a cached answer is never
// served across a ranking change — stale entries are evicted lazily on
// their next lookup.
//
// The companion Group is a singleflight layer: N concurrent identical
// queries trigger one underlying computation and share the result, which
// flattens request spikes on popular queries ("thundering herd") into a
// single scatter-gather.
package qcache

import (
	"container/list"
	"hash/fnv"
	"sync"

	"repro/internal/obs"
)

// Metric names the cache publishes. Exported so harnesses (socbench) and
// dashboards can read them off a registry without importing internals.
const (
	MetricHits          = "qcache_hits_total"
	MetricMisses        = "qcache_misses_total"
	MetricCoalesced     = "qcache_coalesced_total"
	MetricEvictions     = "qcache_evictions_total"
	MetricInvalidations = "qcache_invalidations_total"
	MetricBytes         = "qcache_bytes"
	MetricEntries       = "qcache_entries"
)

// DefaultSegments is the segment count when New is given 0: enough to
// make lock contention invisible at typical serving parallelism without
// fragmenting the byte budget.
const DefaultSegments = 16

// entry is one cached value with its accounting and validity metadata.
type entry struct {
	key   string
	val   any
	bytes int64
	epoch uint64
}

// segment is one independently-locked LRU over a slice of the key space.
type segment struct {
	mu    sync.Mutex
	lru   *list.List // front = most recently used
	byKey map[string]*list.Element
	bytes int64
	cap   int64
}

// metrics holds the cache's resolved handles; all tolerate nil.
type metrics struct {
	hits          *obs.Counter
	misses        *obs.Counter
	evictions     *obs.Counter
	invalidations *obs.Counter
	bytes         *obs.Gauge
	entries       *obs.Gauge
}

// Cache is the sharded LRU. All methods are safe for concurrent use, and
// a nil *Cache is a valid no-op cache (Get always misses, Put discards),
// so "caching off" is expressed by wiring nil.
type Cache struct {
	segs []*segment
	met  metrics
}

// New builds a cache bounded at maxBytes across `segments` LRU segments
// (0 means DefaultSegments), registering its series in r (nil r disables
// instrumentation). maxBytes <= 0 returns nil — the no-op cache.
func New(maxBytes int64, segments int, r *obs.Registry) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	if segments <= 0 {
		segments = DefaultSegments
	}
	r.Help(MetricHits, "Query-cache lookups served from a valid entry.")
	r.Help(MetricMisses, "Query-cache lookups that found no valid entry.")
	r.Help(MetricEvictions, "Entries evicted by the byte-capacity LRU.")
	r.Help(MetricInvalidations, "Entries dropped because their epoch went stale.")
	r.Help(MetricBytes, "Estimated bytes resident in the query cache.")
	r.Help(MetricEntries, "Entries resident in the query cache.")
	c := &Cache{
		segs: make([]*segment, segments),
		met: metrics{
			hits:          r.Counter(MetricHits),
			misses:        r.Counter(MetricMisses),
			evictions:     r.Counter(MetricEvictions),
			invalidations: r.Counter(MetricInvalidations),
			bytes:         r.Gauge(MetricBytes),
			entries:       r.Gauge(MetricEntries),
		},
	}
	per := maxBytes / int64(segments)
	if per < 1 {
		per = 1
	}
	for i := range c.segs {
		c.segs[i] = &segment{lru: list.New(), byKey: map[string]*list.Element{}, cap: per}
	}
	return c
}

// seg picks the segment owning a key by stable hash.
func (c *Cache) seg(key string) *segment {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.segs[h.Sum32()%uint32(len(c.segs))]
}

// Get returns the entry for key if it exists and was stored under the
// given epoch. An entry from another epoch is removed on the spot (lazy
// invalidation) and reported as a miss.
func (c *Cache) Get(key string, epoch uint64) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := c.seg(key)
	s.mu.Lock()
	el, ok := s.byKey[key]
	if !ok {
		s.mu.Unlock()
		c.met.misses.Inc()
		return nil, false
	}
	ent := el.Value.(*entry)
	if ent.epoch != epoch {
		s.remove(el, ent, &c.met)
		s.mu.Unlock()
		c.met.invalidations.Inc()
		c.met.misses.Inc()
		return nil, false
	}
	s.lru.MoveToFront(el)
	// Capture the value under the lock: a concurrent Put replacing this
	// key mutates the entry in place.
	val := ent.val
	s.mu.Unlock()
	c.met.hits.Inc()
	return val, true
}

// GetValidate returns the entry for key if validate accepts its value.
// validate runs under the segment lock and may mutate the value in place
// (e.g. refresh per-shard epochs after proving the answer still holds) —
// it must be fast and must not call back into the cache. A rejected entry
// is removed on the spot and reported as an invalidation plus a miss,
// exactly like an epoch mismatch in Get.
func (c *Cache) GetValidate(key string, validate func(val any) bool) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := c.seg(key)
	s.mu.Lock()
	el, ok := s.byKey[key]
	if !ok {
		s.mu.Unlock()
		c.met.misses.Inc()
		return nil, false
	}
	ent := el.Value.(*entry)
	if !validate(ent.val) {
		s.remove(el, ent, &c.met)
		s.mu.Unlock()
		c.met.invalidations.Inc()
		c.met.misses.Inc()
		return nil, false
	}
	s.lru.MoveToFront(el)
	val := ent.val
	s.mu.Unlock()
	c.met.hits.Inc()
	return val, true
}

// Put stores (or replaces) the entry for key, charging `bytes` against
// the owning segment's capacity and evicting from the LRU tail until the
// segment fits. A value larger than a whole segment is not admitted.
func (c *Cache) Put(key string, val any, bytes int64, epoch uint64) {
	if c == nil {
		return
	}
	s := c.seg(key)
	if bytes > s.cap {
		return
	}
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		ent := el.Value.(*entry)
		s.bytes += bytes - ent.bytes
		c.met.bytes.Add(float64(bytes - ent.bytes))
		ent.val, ent.bytes, ent.epoch = val, bytes, epoch
		s.lru.MoveToFront(el)
	} else {
		el := s.lru.PushFront(&entry{key: key, val: val, bytes: bytes, epoch: epoch})
		s.byKey[key] = el
		s.bytes += bytes
		c.met.bytes.Add(float64(bytes))
		c.met.entries.Inc()
	}
	for s.bytes > s.cap {
		back := s.lru.Back()
		if back == nil {
			break
		}
		s.remove(back, back.Value.(*entry), &c.met)
		c.met.evictions.Inc()
	}
	s.mu.Unlock()
}

// remove unlinks an entry and settles the accounting. Segment lock held.
func (s *segment) remove(el *list.Element, ent *entry, met *metrics) {
	s.lru.Remove(el)
	delete(s.byKey, ent.key)
	s.bytes -= ent.bytes
	met.bytes.Add(-float64(ent.bytes))
	met.entries.Dec()
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, s := range c.segs {
		s.mu.Lock()
		n += len(s.byKey)
		s.mu.Unlock()
	}
	return n
}

// Bytes returns the resident byte estimate.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	var n int64
	for _, s := range c.segs {
		s.mu.Lock()
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}

// Flush drops every entry (benchmark arms and tests; production relies
// on epoch invalidation instead).
func (c *Cache) Flush() {
	if c == nil {
		return
	}
	for _, s := range c.segs {
		s.mu.Lock()
		for el := s.lru.Back(); el != nil; el = s.lru.Back() {
			s.remove(el, el.Value.(*entry), &c.met)
		}
		s.mu.Unlock()
	}
}
