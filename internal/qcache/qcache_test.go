package qcache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestGetPutRoundTrip(t *testing.T) {
	r := obs.NewRegistry()
	c := New(1<<20, 4, r)
	if _, ok := c.Get("k", 1); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("k", "v", 100, 1)
	v, ok := c.Get("k", 1)
	if !ok || v.(string) != "v" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if got := r.Counter(MetricHits).Value(); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := r.Counter(MetricMisses).Value(); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if c.Len() != 1 || c.Bytes() != 100 {
		t.Errorf("len/bytes = %d/%d, want 1/100", c.Len(), c.Bytes())
	}
}

func TestEpochInvalidation(t *testing.T) {
	r := obs.NewRegistry()
	c := New(1<<20, 1, r)
	c.Put("k", "old", 10, 1)
	// The same key at a newer epoch must miss, and the stale entry is gone.
	if _, ok := c.Get("k", 2); ok {
		t.Fatal("stale entry served across an epoch bump")
	}
	if got := r.Counter(MetricInvalidations).Value(); got != 1 {
		t.Errorf("invalidations = %d, want 1", got)
	}
	if c.Len() != 0 {
		t.Errorf("stale entry still resident: len = %d", c.Len())
	}
	// A lookup at the old epoch must not resurrect it either.
	if _, ok := c.Get("k", 1); ok {
		t.Fatal("removed entry reappeared")
	}
}

func TestByteCapacityEviction(t *testing.T) {
	r := obs.NewRegistry()
	// One segment capped at 100 bytes: four 30-byte entries force evictions
	// in LRU order.
	c := New(100, 1, r)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 30, 1)
	}
	c.Get("k0", 1) // touch k0 so k1 is now least-recent
	c.Put("k3", 3, 30, 1)
	if _, ok := c.Get("k1", 1); ok {
		t.Error("LRU entry k1 survived over-capacity insert")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k, 1); !ok {
			t.Errorf("entry %s evicted out of LRU order", k)
		}
	}
	if got := r.Counter(MetricEvictions).Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if c.Bytes() > 100 {
		t.Errorf("resident bytes %d exceed capacity", c.Bytes())
	}
	// An entry larger than a whole segment is refused outright.
	c.Put("huge", 0, 1000, 1)
	if _, ok := c.Get("huge", 1); ok {
		t.Error("oversized entry admitted")
	}
}

func TestReplaceAdjustsAccounting(t *testing.T) {
	c := New(1<<20, 1, nil)
	c.Put("k", "a", 40, 1)
	c.Put("k", "b", 10, 2)
	if c.Len() != 1 || c.Bytes() != 10 {
		t.Fatalf("len/bytes after replace = %d/%d, want 1/10", c.Len(), c.Bytes())
	}
	if v, ok := c.Get("k", 2); !ok || v.(string) != "b" {
		t.Fatalf("Get after replace = %v, %v", v, ok)
	}
}

func TestNilCacheIsNoop(t *testing.T) {
	var c *Cache
	c.Put("k", "v", 1, 1)
	if _, ok := c.Get("k", 1); ok {
		t.Fatal("nil cache hit")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("nil cache accounts bytes")
	}
	c.Flush()
	if New(0, 4, nil) != nil {
		t.Fatal("New(0) built a cache")
	}
}

func TestFlush(t *testing.T) {
	c := New(1<<20, 4, nil)
	for i := 0; i < 20; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 10, 1)
	}
	c.Flush()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("after Flush: len=%d bytes=%d", c.Len(), c.Bytes())
	}
}

// TestConcurrentCache hammers Get/Put/Flush from many goroutines — the
// race detector is the real assertion, plus capacity holds throughout.
func TestConcurrentCache(t *testing.T) {
	c := New(4096, 4, obs.NewRegistry())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (w*31+i)%64)
				c.Put(k, i, 64, uint64(i%3))
				c.Get(k, uint64(i%3))
			}
		}(w)
	}
	wg.Wait()
	if c.Bytes() > 4096 {
		t.Errorf("resident bytes %d exceed capacity", c.Bytes())
	}
}

// TestGroupCoalesces: N concurrent callers on one key run fn exactly once
// and all observe the same value.
func TestGroupCoalesces(t *testing.T) {
	r := obs.NewRegistry()
	g := NewGroup(r)
	var calls atomic.Int64
	release := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	vals := make([]any, n)
	leaders := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, leader, err := g.Do(context.Background(), "q", func() any {
				calls.Add(1)
				<-release // hold the flight open until every caller joined
				return "answer"
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			vals[i], leaders[i] = v, leader
		}(i)
	}
	// Wait until all non-leaders are parked on the flight, then release.
	deadline := time.Now().Add(2 * time.Second)
	for r.Counter(MetricCoalesced).Value() < n-1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	nLeaders := 0
	for i := range vals {
		if vals[i].(string) != "answer" {
			t.Errorf("caller %d got %v", i, vals[i])
		}
		if leaders[i] {
			nLeaders++
		}
	}
	if nLeaders != 1 {
		t.Errorf("%d leaders, want 1", nLeaders)
	}
	if got := r.Counter(MetricCoalesced).Value(); got != n-1 {
		t.Errorf("coalesced = %d, want %d", got, n-1)
	}
}

// TestGroupSequentialCallsDoNotShare: flights are cleared on completion,
// so non-overlapping calls each run fn.
func TestGroupSequentialCallsDoNotShare(t *testing.T) {
	g := NewGroup(nil)
	var calls atomic.Int64
	for i := 0; i < 3; i++ {
		v, leader, err := g.Do(context.Background(), "q", func() any {
			return calls.Add(1)
		})
		if err != nil || !leader {
			t.Fatalf("call %d: leader=%v err=%v", i, leader, err)
		}
		if v.(int64) != int64(i+1) {
			t.Fatalf("call %d returned %v", i, v)
		}
	}
}

// TestGroupFollowerTimeout: a follower whose context expires mid-flight
// gets the context error while the leader completes normally.
func TestGroupFollowerTimeout(t *testing.T) {
	g := NewGroup(nil)
	release := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), "q", func() any {
			close(started)
			<-release
			return "late"
		})
		leaderDone <- err
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, err := g.Do(ctx, "q", func() any { return "never" }); err != context.DeadlineExceeded {
		t.Errorf("follower err = %v, want DeadlineExceeded", err)
	}
	close(release)
	if err := <-leaderDone; err != nil {
		t.Errorf("leader err = %v", err)
	}
}

// TestNilGroupRunsDirectly: a nil group degrades to calling fn.
func TestNilGroupRunsDirectly(t *testing.T) {
	var g *Group
	v, leader, err := g.Do(context.Background(), "q", func() any { return 7 })
	if err != nil || !leader || v.(int) != 7 {
		t.Fatalf("nil group Do = %v %v %v", v, leader, err)
	}
}
