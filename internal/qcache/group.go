package qcache

import (
	"context"
	"sync"

	"repro/internal/obs"
)

// call is one in-flight computation shared by every waiter on its key.
type call struct {
	done chan struct{} // closed when val is ready
	val  any
}

// Group coalesces concurrent identical requests: the first caller for a
// key becomes the leader and runs fn; callers arriving before the leader
// finishes wait for the leader's value instead of recomputing it. Once
// the leader completes, the key is cleared — a later caller starts a
// fresh flight (the cache, not the group, serves repeats over time).
type Group struct {
	mu        sync.Mutex
	calls     map[string]*call
	coalesced *obs.Counter
}

// NewGroup builds a singleflight group, registering its coalesced-request
// counter in r (nil r disables instrumentation).
func NewGroup(r *obs.Registry) *Group {
	r.Help(MetricCoalesced, "Requests that shared another request's in-flight computation.")
	return &Group{calls: map[string]*call{}, coalesced: r.Counter(MetricCoalesced)}
}

// Do runs fn for key, coalescing with any in-flight call on the same key.
// It returns the shared value and whether this caller was the leader (ran
// fn itself). A follower whose ctx expires before the leader finishes
// returns ctx's error; the leader's computation keeps running for the
// other waiters. A nil *Group runs fn directly.
func (g *Group) Do(ctx context.Context, key string, fn func() any) (any, bool, error) {
	if g == nil {
		return fn(), true, nil
	}
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		g.coalesced.Inc()
		select {
		case <-c.done:
			return c.val, false, nil
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()
	// The key is cleared before done is closed, so a caller arriving after
	// completion can never latch onto a finished flight.
	defer close(c.done)
	defer func() {
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
	}()
	c.val = fn()
	return c.val, true, nil
}
