package eval

import (
	"strings"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// FormalQuery is one Table 3 information need expressed as formal SPARQL
// over the inferred knowledge base — the querying regime the paper calls
// "the best that can be achieved with semantic querying" and measures the
// keyword system against. Several needs require a union of SELECTs (our
// engine, like many small BGP engines, has no UNION operator), which is
// itself part of the usability argument: compare these to the two-word
// keyword queries of Table 3.
type FormalQuery struct {
	ID string
	// SPARQL queries whose ?e solutions are unioned.
	SPARQL []string
}

// FormalQueries returns the SPARQL formulations of Q-1..Q-10.
func FormalQueries() []FormalQuery {
	return []FormalQuery{
		{ID: "Q-1", SPARQL: []string{
			`SELECT DISTINCT ?e WHERE { ?e a pre:Goal . }`,
			`SELECT DISTINCT ?e WHERE { ?e a pre:OwnGoal . }`,
		}},
		{ID: "Q-2", SPARQL: []string{
			`SELECT DISTINCT ?e WHERE { ?e a pre:Goal . ?e pre:scoringTeam pre:Barcelona . }`,
			// Own goals credit the opponent: an own goal in a Barcelona match
			// whose scorer plays for the other side.
			`SELECT DISTINCT ?e WHERE {
				?e a pre:OwnGoal . ?e pre:inMatch ?m . ?m pre:homeTeam pre:Barcelona .
				?e pre:subjectTeam ?st . FILTER(?st != pre:Barcelona)
			}`,
			`SELECT DISTINCT ?e WHERE {
				?e a pre:OwnGoal . ?e pre:inMatch ?m . ?m pre:awayTeam pre:Barcelona .
				?e pre:subjectTeam ?st . FILTER(?st != pre:Barcelona)
			}`,
		}},
		{ID: "Q-3", SPARQL: []string{
			`SELECT DISTINCT ?e WHERE { ?e a pre:Goal . ?e pre:scorerPlayer pre:Lionel_Messi . }`,
		}},
		{ID: "Q-4", SPARQL: []string{
			`SELECT DISTINCT ?e WHERE { ?e a pre:Punishment . }`,
		}},
		{ID: "Q-5", SPARQL: []string{
			`SELECT DISTINCT ?e WHERE { ?e a pre:YellowCard . ?e pre:punishedPlayer pre:Alex . }`,
			`SELECT DISTINCT ?e WHERE { ?e a pre:SecondYellowCard . ?e pre:punishedPlayer pre:Alex . }`,
		}},
		{ID: "Q-6", SPARQL: []string{
			`SELECT DISTINCT ?e WHERE { ?e a pre:Goal . ?e pre:scoredToGoalkeeper pre:Iker_Casillas . }`,
		}},
		{ID: "Q-7", SPARQL: []string{
			`SELECT DISTINCT ?e WHERE { pre:Thierry_Henry pre:actorOfNegativeMove ?e . }`,
		}},
		{ID: "Q-8", SPARQL: []string{
			`SELECT DISTINCT ?e WHERE { ?e pre:subjectPlayer pre:Cristiano_Ronaldo . }`,
			`SELECT DISTINCT ?e WHERE { ?e pre:objectPlayer pre:Cristiano_Ronaldo . }`,
		}},
		{ID: "Q-9", SPARQL: []string{
			`SELECT DISTINCT ?e WHERE { ?e a pre:Save . ?e pre:subjectTeam pre:Barcelona . }`,
		}},
		{ID: "Q-10", SPARQL: []string{
			`SELECT DISTINCT ?e WHERE { ?e a pre:Shoot . ?e pre:shootingPlayer ?p . ?p a pre:DefencePlayer . }`,
		}},
	}
}

// ExecFormal runs the union over the merged inferred graph, returning the
// distinct ?e individuals.
func ExecFormal(fq FormalQuery, g *rdf.Graph) []rdf.Term {
	seen := map[rdf.Term]bool{}
	var out []rdf.Term
	for _, src := range fq.SPARQL {
		q := sparql.MustParse(src)
		for _, sol := range q.Exec(g) {
			e, ok := sol["e"]
			if !ok || seen[e] {
				continue
			}
			seen[e] = true
			out = append(out, e)
		}
	}
	rdf.SortTerms(out)
	return out
}

// FormalResult is precision/recall of a formal query against ground truth.
type FormalResult struct {
	Retrieved int
	Relevant  int
	// TruePositives are retrieved individuals resolving to relevant events.
	TruePositives int
}

// Precision of the formal result (1.0 when nothing retrieved and nothing
// relevant).
func (r FormalResult) Precision() float64 {
	if r.Retrieved == 0 {
		if r.Relevant == 0 {
			return 1
		}
		return 0
	}
	return float64(r.TruePositives) / float64(r.Retrieved)
}

// Recall of the formal result.
func (r FormalResult) Recall() float64 {
	if r.Relevant == 0 {
		return 1
	}
	return float64(r.TruePositives) / float64(r.Relevant)
}

// EvaluateFormal scores a formal query's solution set against the ground
// truth of the corresponding Table 3 query. Individuals are resolved to
// truth events through the knowledge base itself (match, minute, subject,
// types).
func (j *Judge) EvaluateFormal(fq FormalQuery, paper Query, g *rdf.Graph) FormalResult {
	relevant := j.RelevantSet(paper)
	res := FormalResult{Relevant: len(relevant)}
	seen := map[TruthRef]bool{}
	for _, e := range ExecFormal(fq, g) {
		res.Retrieved++
		ref, ok := j.resolveIndividual(g, e)
		if ok && relevant[ref] && !seen[ref] {
			seen[ref] = true
			res.TruePositives++
		}
	}
	return res
}

// resolveIndividual maps an event individual in the knowledge base to its
// ground-truth event via (match, minute, subject) plus type compatibility.
func (j *Judge) resolveIndividual(g *rdf.Graph, e rdf.Term) (TruthRef, bool) {
	pre := func(local string) rdf.Term { return rdf.NewIRI(rdf.NSSoccer + local) }
	matchTerm := g.FirstObject(e, pre("inMatch"))
	if matchTerm.IsZero() {
		return TruthRef{}, false
	}
	matchID := matchTerm.LocalName()
	m, ok := j.matches[matchID]
	if !ok {
		return TruthRef{}, false
	}
	minute := g.FirstObject(e, pre("inMinute")).Value
	subject := ""
	if subs := g.Objects(e, pre("subjectPlayer")); len(subs) > 0 {
		subject = g.FirstObject(subs[0], pre("hasName")).Value
		if subject == "" {
			subject = strings.ReplaceAll(subs[0].LocalName(), "_", " ")
		}
	}
	key := matchID + "|" + minute + "|" + subject
	types := g.Objects(e, rdf.RDFType)
	// Two passes: exact type matches first, substring compatibility second.
	// An inferred assist also carries type Pass (domain of passingPlayer)
	// and shares minute and subject with its source pass; only the exact
	// pass keeps it from resolving to the wrong truth event.
	for _, exact := range []bool{true, false} {
		for _, ti := range j.byKey[key] {
			truthKind := string(m.Truth[ti].Kind)
			for _, t := range types {
				name := t.LocalName()
				if name == truthKind {
					return TruthRef{matchID, ti}, true
				}
				if !exact && (strings.Contains(truthKind, name) || strings.Contains(name, truthKind)) {
					return TruthRef{matchID, ti}, true
				}
			}
		}
	}
	return TruthRef{}, false
}
