package eval

import (
	"math"
	"testing"

	"repro/internal/crawler"
	"repro/internal/semindex"
	"repro/internal/soccer"
)

func TestFullMetricsAgreesWithAP(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 3, Seed: 11, NarrationsPerMatch: 60, PaperCoverage: true})
	j := NewJudge(c)
	si := semindex.NewBuilder().Build(semindex.FullInf, crawler.PagesFromCorpus(c))
	for _, q := range PaperQueries() {
		hits := si.Search(q.Keywords, 0)
		ap := j.AveragePrecision(q, hits)
		m := j.FullMetrics(q, hits)
		if math.Abs(ap.AP-m.AP) > 1e-9 {
			t.Errorf("%s: AP disagree %f vs %f", q.ID, ap.AP, m.AP)
		}
		if m.RelevantFound != ap.RelevantFound {
			t.Errorf("%s: found disagree", q.ID)
		}
		if m.NDCG < 0 || m.NDCG > 1.0000001 {
			t.Errorf("%s: NDCG out of range: %f", q.ID, m.NDCG)
		}
		if m.RR < 0 || m.RR > 1 {
			t.Errorf("%s: RR out of range: %f", q.ID, m.RR)
		}
	}
}

func TestFullMetricsPerfectRanking(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 2, Seed: 11, NarrationsPerMatch: 50, PaperCoverage: true})
	j := NewJudge(c)
	si := semindex.NewBuilder().Build(semindex.FullInf, crawler.PagesFromCorpus(c))
	q := PaperQueries()[3] // punishments: FULL_INF retrieves them perfectly
	hits := si.Search(q.Keywords, 0)
	m := j.FullMetrics(q, hits)
	if m.AP > 0.99 {
		if m.NDCG < 0.99 {
			t.Errorf("perfect AP but NDCG %f", m.NDCG)
		}
		if m.RR != 1 {
			t.Errorf("perfect AP but RR %f", m.RR)
		}
	}
}

func TestPrecisionAt(t *testing.T) {
	relAt := []bool{true, false, true, false, false}
	if got := precisionAt(relAt, 5); got != 0.4 {
		t.Errorf("P@5 = %f", got)
	}
	// Shorter list than k: misses count against precision.
	if got := precisionAt([]bool{true}, 10); got != 0.1 {
		t.Errorf("P@10 with one hit = %f", got)
	}
	if got := precisionAt(nil, 0); got != 0 {
		t.Errorf("P@0 = %f", got)
	}
}

func TestFullMetricsEmptyRelevantSet(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 2, Seed: 11, NarrationsPerMatch: 50})
	j := NewJudge(c)
	q := Query{ID: "none", Keywords: "x",
		Relevant: func(*soccer.Match, *soccer.TruthEvent) bool { return false }}
	m := j.FullMetrics(q, nil)
	if m.AP != 0 || m.NDCG != 0 || m.Relevant != 0 {
		t.Errorf("empty relevant set metrics = %+v", m)
	}
}
