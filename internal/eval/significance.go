package eval

import (
	"math"
	"math/rand"

	"repro/internal/semindex"
)

// RandomizationTest runs a two-sided paired randomization (permutation)
// test on per-query scores of two systems — the standard IR significance
// test for small query sets like the paper's ten queries. The returned
// p-value is the fraction of sign-flip permutations whose mean difference
// is at least as extreme as the observed one.
//
// With only ten queries there are 2^10 = 1024 permutations, so the test
// enumerates them exactly when feasible and samples otherwise.
func RandomizationTest(scoresA, scoresB []float64, iterations int, seed int64) float64 {
	if len(scoresA) != len(scoresB) || len(scoresA) == 0 {
		return 1
	}
	n := len(scoresA)
	diffs := make([]float64, n)
	observed := 0.0
	for i := range scoresA {
		diffs[i] = scoresA[i] - scoresB[i]
		observed += diffs[i]
	}
	observed = math.Abs(observed / float64(n))

	// Exact enumeration when the permutation space is small.
	if n <= 20 {
		total := 1 << n
		extreme := 0
		for mask := 0; mask < total; mask++ {
			sum := 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					sum -= diffs[i]
				} else {
					sum += diffs[i]
				}
			}
			if math.Abs(sum/float64(n)) >= observed-1e-12 {
				extreme++
			}
		}
		return float64(extreme) / float64(total)
	}

	if iterations <= 0 {
		iterations = 10000
	}
	rng := rand.New(rand.NewSource(seed))
	extreme := 0
	for it := 0; it < iterations; it++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				sum += diffs[i]
			} else {
				sum -= diffs[i]
			}
		}
		if math.Abs(sum/float64(n)) >= observed-1e-12 {
			extreme++
		}
	}
	return float64(extreme) / float64(iterations)
}

// CompareSystems scores two indices on the paper queries and reports the
// per-query APs with the randomization-test p-value of their difference.
func (j *Judge) CompareSystems(a, b *semindex.SemanticIndex) (apsA, apsB []float64, pValue float64) {
	for _, q := range PaperQueries() {
		apsA = append(apsA, j.AveragePrecision(q, a.Search(q.Keywords, 0)).AP)
		apsB = append(apsB, j.AveragePrecision(q, b.Search(q.Keywords, 0)).AP)
	}
	return apsA, apsB, RandomizationTest(apsA, apsB, 0, 1)
}
