package eval

import (
	"strings"
	"testing"

	"repro/internal/crawler"
	"repro/internal/expansion"
	"repro/internal/semindex"
	"repro/internal/soccer"
)

// paperCorpus is the default 10-match corpus, shared across the heavier
// table tests in this file.
var paperCorpus = soccer.Generate(soccer.DefaultConfig())

func TestPaperQueriesWellFormed(t *testing.T) {
	qs := PaperQueries()
	if len(qs) != 10 {
		t.Fatalf("%d queries", len(qs))
	}
	j := NewJudge(paperCorpus)
	for _, q := range qs {
		if q.ID == "" || q.Keywords == "" || q.Relevant == nil {
			t.Errorf("query %+v malformed", q)
		}
		if n := len(j.RelevantSet(q)); n == 0 {
			t.Errorf("%s has an empty relevant set on the default corpus", q.ID)
		}
	}
}

func TestAveragePrecisionArithmetic(t *testing.T) {
	// Synthetic check of the AP computation using a tiny fabricated case:
	// build a 1-match corpus, search TRAD for a term and hand-verify.
	c := soccer.Generate(soccer.Config{Matches: 2, Seed: 7, NarrationsPerMatch: 40, PaperCoverage: true})
	j := NewJudge(c)
	q := Query{
		ID: "T", Keywords: "offside",
		Relevant: func(m *soccer.Match, tr *soccer.TruthEvent) bool {
			return tr.Kind == soccer.KindOffside
		},
	}
	rel := j.RelevantSet(q)
	if len(rel) == 0 {
		t.Skip("no offsides in tiny corpus")
	}
	si := semindex.NewBuilder().Build(semindex.FullInf, crawler.PagesFromCorpus(c))
	res := j.AveragePrecision(q, si.Search(q.Keywords, 0))
	if res.AP <= 0 || res.AP > 1 {
		t.Errorf("AP = %f out of range", res.AP)
	}
	if res.Relevant != len(rel) {
		t.Errorf("Relevant = %d, want %d", res.Relevant, len(rel))
	}
	if res.RelevantFound > res.Relevant {
		t.Errorf("found %d > relevant %d", res.RelevantFound, res.Relevant)
	}
}

func TestAveragePrecisionPerfectRanking(t *testing.T) {
	// If all hits are relevant and complete, AP is exactly 1.
	c := soccer.Generate(soccer.Config{Matches: 2, Seed: 7, NarrationsPerMatch: 40, PaperCoverage: true})
	j := NewJudge(c)
	q := PaperQueries()[0] // goals
	si := semindex.NewBuilder().Build(semindex.FullInf, crawler.PagesFromCorpus(c))
	hits := si.Search("goal", 0)
	// Filter the hit list to relevant-only to fabricate a perfect ranking.
	var perfect []semindex.Hit
	rel := j.RelevantSet(q)
	seen := map[TruthRef]bool{}
	for _, h := range hits {
		if ref, ok := j.ResolveHit(h); ok && rel[ref] && !seen[ref] {
			seen[ref] = true
			perfect = append(perfect, h)
		}
	}
	if len(perfect) != len(rel) {
		t.Skipf("index retrieved %d of %d", len(perfect), len(rel))
	}
	res := j.AveragePrecision(q, perfect)
	if res.AP < 0.999 {
		t.Errorf("perfect ranking AP = %f", res.AP)
	}
}

func TestResultFormatting(t *testing.T) {
	r := Result{AP: 0.757, Relevant: 7}
	if got := r.Found(); got != "5.3/7" {
		t.Errorf("Found = %q", got)
	}
	if got := r.Percent(); got != "75.7%" {
		t.Errorf("Percent = %q", got)
	}
}

// TestTable4Shape asserts the qualitative findings of the paper's Table 4
// hold on the simulated corpus.
func TestTable4Shape(t *testing.T) {
	tbl := Table4(paperCorpus, semindex.NewBuilder())
	cell := func(q string, l semindex.Level) float64 {
		for _, row := range tbl.Rows {
			if row.Query.ID == q {
				return row.Cells[l].AP
			}
		}
		t.Fatalf("query %s missing", q)
		return 0
	}
	trad, basic, full, inf := semindex.Trad, semindex.BasicExt, semindex.FullExt, semindex.FullInf

	// Q-1..Q-3: narrations omit "goal", so TRAD collapses while every
	// semantic index is near-perfect.
	for _, q := range []string{"Q-1", "Q-2", "Q-3"} {
		if cell(q, trad) > 0.30 {
			t.Errorf("%s TRAD = %.2f, expected collapse", q, cell(q, trad))
		}
		if cell(q, basic) < 0.80 || cell(q, inf) < 0.80 {
			t.Errorf("%s semantic indices too weak: basic=%.2f inf=%.2f", q, cell(q, basic), cell(q, inf))
		}
	}
	// Q-4: punishments are pure inference — everything but FULL_INF is 0.
	for _, l := range []semindex.Level{trad, basic, full} {
		if cell("Q-4", l) != 0 {
			t.Errorf("Q-4 %s = %.2f, want 0", l, cell("Q-4", l))
		}
	}
	if cell("Q-4", inf) < 0.95 {
		t.Errorf("Q-4 FULL_INF = %.2f", cell("Q-4", inf))
	}
	// Q-6 (rule) and Q-10 (classification): FULL_INF dominates.
	if cell("Q-6", inf) < 0.9 || cell("Q-6", inf) <= cell("Q-6", full) {
		t.Errorf("Q-6: inf=%.2f full=%.2f", cell("Q-6", inf), cell("Q-6", full))
	}
	if cell("Q-10", inf) < 0.9 || cell("Q-10", inf) <= cell("Q-10", full)+0.3 {
		t.Errorf("Q-10: inf=%.2f full=%.2f", cell("Q-10", inf), cell("Q-10", full))
	}
	// Q-7: property-hierarchy inference gives FULL_INF a wide margin.
	if cell("Q-7", inf) < cell("Q-7", full)+0.2 {
		t.Errorf("Q-7: inf=%.2f full=%.2f", cell("Q-7", inf), cell("Q-7", full))
	}
	// Q-8: all indices roughly equal (single-name query).
	if diff := cell("Q-8", inf) - cell("Q-8", trad); diff < -0.15 {
		t.Errorf("Q-8 FULL_INF below TRAD by %.2f", -diff)
	}
	// The MAP ladder is monotone: TRAD <= BASIC_EXT <= FULL_EXT <= FULL_INF.
	order := tbl.SortedLevels()
	if order[0] != trad || order[len(order)-1] != inf {
		t.Errorf("MAP order = %v", order)
	}
	if tbl.MAP(basic) > tbl.MAP(full) {
		t.Errorf("BASIC_EXT MAP %.3f > FULL_EXT MAP %.3f", tbl.MAP(basic), tbl.MAP(full))
	}
}

// TestTable5Shape asserts Section 5's finding: query expansion lands
// between TRAD and FULL_INF overall, improving the goal/punishment queries
// but never reaching semantic indexing.
func TestTable5Shape(t *testing.T) {
	tbl := Table5(paperCorpus, semindex.NewBuilder(), expansion.New())
	mapTrad := tbl.MAP(semindex.Trad)
	mapExp := tbl.MAP(QueryExpLevel)
	mapInf := tbl.MAP(semindex.FullInf)
	if !(mapTrad < mapExp && mapExp < mapInf) {
		t.Errorf("MAP order TRAD=%.3f QUERY_EXP=%.3f FULL_INF=%.3f", mapTrad, mapExp, mapInf)
	}
	// Q-1 and Q-4 are the paper's showcase improvements.
	for _, row := range tbl.Rows {
		switch row.Query.ID {
		case "Q-1", "Q-4":
			if row.Cells[QueryExpLevel].AP <= row.Cells[semindex.Trad].AP {
				t.Errorf("%s: expansion did not improve TRAD", row.Query.ID)
			}
			if row.Cells[QueryExpLevel].AP >= row.Cells[semindex.FullInf].AP {
				t.Errorf("%s: expansion matched semantic indexing", row.Query.ID)
			}
		}
	}
}

// TestTable6Shape asserts Section 6's finding: phrasal expressions resolve
// the subject/object structural ambiguity completely.
func TestTable6Shape(t *testing.T) {
	tbl := Table6(paperCorpus, semindex.NewBuilder())
	for _, row := range tbl.Rows {
		if got := row.Cells[semindex.PhrExp].AP; got < 0.999 {
			t.Errorf("%s PHR_EXP = %.3f, want 1.0", row.Query.ID, got)
		}
	}
	// FULL_INF must fail to discriminate on at least one orientation.
	confused := false
	for _, row := range tbl.Rows {
		if row.Cells[semindex.FullInf].AP < 0.999 {
			confused = true
		}
	}
	if !confused {
		t.Error("FULL_INF resolved all phrasal ambiguities; Table 6 would be vacuous")
	}
}

func TestTableFormat(t *testing.T) {
	tbl := Table6(paperCorpus, semindex.NewBuilder())
	s := tbl.Format()
	for _, want := range []string{"Table 6", "P-1", "FULL_INF", "PHR_EXP", "%"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format missing %q:\n%s", want, s)
		}
	}
}

func TestJudgeResolveMiss(t *testing.T) {
	j := NewJudge(paperCorpus)
	if _, ok := j.ResolveHit(semindex.Hit{}); ok {
		t.Error("empty hit resolved")
	}
}
