package eval

import (
	"math"

	"repro/internal/semindex"
)

// Metrics extends the paper's mean-average-precision reporting with the
// other standard ranked-retrieval measures, so the reproduced tables can be
// read against modern IR conventions.
type Metrics struct {
	AP   float64
	P5   float64 // precision at 5
	P10  float64 // precision at 10
	RR   float64 // reciprocal rank of the first relevant hit
	NDCG float64 // nDCG over the full ranking with binary gains
	// Relevant and RelevantFound mirror Result.
	Relevant      int
	RelevantFound int
}

// FullMetrics scores a ranked list with all supported measures.
func (j *Judge) FullMetrics(q Query, hits []semindex.Hit) Metrics {
	relevant := j.RelevantSet(q)
	m := Metrics{Relevant: len(relevant)}
	if len(relevant) == 0 {
		return m
	}
	seen := map[TruthRef]bool{}
	sumPrec := 0.0
	dcg := 0.0
	relAt := make([]bool, len(hits))
	for rank, h := range hits {
		ref, ok := j.ResolveHit(h)
		if !ok || !relevant[ref] || seen[ref] {
			continue
		}
		seen[ref] = true
		relAt[rank] = true
		m.RelevantFound++
		sumPrec += float64(m.RelevantFound) / float64(rank+1)
		dcg += 1 / math.Log2(float64(rank)+2)
		if m.RR == 0 {
			m.RR = 1 / float64(rank+1)
		}
	}
	m.AP = sumPrec / float64(len(relevant))
	m.P5 = precisionAt(relAt, 5)
	m.P10 = precisionAt(relAt, 10)

	// Ideal DCG: all |R| relevant docs at the top.
	idcg := 0.0
	for i := 0; i < len(relevant); i++ {
		idcg += 1 / math.Log2(float64(i)+2)
	}
	if idcg > 0 {
		m.NDCG = dcg / idcg
	}
	return m
}

func precisionAt(relAt []bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	hits := 0
	n := k
	if len(relAt) < n {
		n = len(relAt)
	}
	for i := 0; i < n; i++ {
		if relAt[i] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}
