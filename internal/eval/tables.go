package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/crawler"
	"repro/internal/expansion"
	"repro/internal/semindex"
	"repro/internal/soccer"
)

// TableRow is one query's scores across index levels.
type TableRow struct {
	Query Query
	Cells map[semindex.Level]Result
}

// Table is a full experiment result.
type Table struct {
	Title  string
	Levels []semindex.Level
	Rows   []TableRow
}

// BuildIndices builds the requested levels over the corpus.
func BuildIndices(b *semindex.Builder, c *soccer.Corpus, levels ...semindex.Level) map[semindex.Level]*semindex.SemanticIndex {
	pages := crawler.PagesFromCorpus(c)
	out := map[semindex.Level]*semindex.SemanticIndex{}
	for _, l := range levels {
		out[l] = b.Build(l, pages)
	}
	return out
}

// Table4 reproduces the paper's Table 4: the ten queries against TRAD,
// BASIC_EXT, FULL_EXT and FULL_INF.
func Table4(c *soccer.Corpus, b *semindex.Builder) Table {
	levels := []semindex.Level{semindex.Trad, semindex.BasicExt, semindex.FullExt, semindex.FullInf}
	return runTable("Table 4: evaluation results (mean average precision)", c, b, levels, PaperQueries())
}

// QueryExpLevel labels the query-expansion column of Table 5. It is not an
// index level: expanded queries run against the TRAD index.
const QueryExpLevel = semindex.Level("QUERY_EXP")

// Table5 reproduces the paper's Table 5: the traditional index, the
// query-expansion baseline (expanded queries over the traditional index)
// and the full inferred semantic index.
func Table5(c *soccer.Corpus, b *semindex.Builder, exp *expansion.Expander) Table {
	indices := BuildIndices(b, c, semindex.Trad, semindex.FullInf)
	j := NewJudge(c)
	t := Table{
		Title:  "Table 5: comparison with query expansion",
		Levels: []semindex.Level{semindex.Trad, QueryExpLevel, semindex.FullInf},
	}
	for _, q := range PaperQueries() {
		row := TableRow{Query: q, Cells: map[semindex.Level]Result{}}
		row.Cells[semindex.Trad] = j.Evaluate(q, indices[semindex.Trad])
		expanded := exp.Expand(q.Keywords)
		row.Cells[QueryExpLevel] = j.AveragePrecision(q, indices[semindex.Trad].Search(expanded, 0))
		row.Cells[semindex.FullInf] = j.Evaluate(q, indices[semindex.FullInf])
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table6 reproduces Table 6: the three phrasal ambiguity queries against
// FULL_INF and PHR_EXP. Daniel (Alves, Barcelona) and Florent (Malouda,
// Chelsea) are the paper's example players; relevance requires the right
// subject/object orientation of the foul.
func Table6(c *soccer.Corpus, b *semindex.Builder) Table {
	queries := PhrasalQueries()
	levels := []semindex.Level{semindex.FullInf, semindex.PhrExp}
	return runTable("Table 6: effects of phrasal expressions", c, b, levels, queries)
}

// PhrasalQueries returns the Section 6 query set.
func PhrasalQueries() []Query {
	foulBy := func(subject string) func(*soccer.Match, *soccer.TruthEvent) bool {
		return func(m *soccer.Match, t *soccer.TruthEvent) bool {
			return (t.Kind == soccer.KindFoul || t.Kind == soccer.KindHandBall) &&
				t.Subject != nil && t.Subject.Short == subject
		}
	}
	foulByTo := func(subject, object string) func(*soccer.Match, *soccer.TruthEvent) bool {
		return func(m *soccer.Match, t *soccer.TruthEvent) bool {
			return t.Kind == soccer.KindFoul &&
				t.Subject != nil && t.Subject.Short == subject &&
				t.Object != nil && t.Object.Short == object
		}
	}
	return []Query{
		{ID: "P-1", Description: "Foul by Daniel", Keywords: "foul by daniel", Relevant: foulBy("Daniel")},
		{ID: "P-2", Description: "Foul by Daniel to Florent", Keywords: "foul by daniel to florent", Relevant: foulByTo("Daniel", "Florent")},
		{ID: "P-3", Description: "Foul by Florent to Daniel", Keywords: "foul by florent to daniel", Relevant: foulByTo("Florent", "Daniel")},
	}
}

func runTable(title string, c *soccer.Corpus, b *semindex.Builder, levels []semindex.Level, queries []Query) Table {
	indices := BuildIndices(b, c, levels...)
	j := NewJudge(c)
	t := Table{Title: title, Levels: levels}
	for _, q := range queries {
		row := TableRow{Query: q, Cells: map[semindex.Level]Result{}}
		for _, l := range levels {
			row.Cells[l] = j.Evaluate(q, indices[l])
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Format renders the table in the paper's layout.
func (t Table) Format() string {
	var b strings.Builder
	b.WriteString(t.Title + "\n")
	fmt.Fprintf(&b, "%-6s", "Query")
	for _, l := range t.Levels {
		fmt.Fprintf(&b, " | %-16s", l)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 6+19*len(t.Levels)) + "\n")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-6s", row.Query.ID)
		for _, l := range t.Levels {
			r := row.Cells[l]
			fmt.Fprintf(&b, " | %-8s %6s", r.Found(), r.Percent())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// MAP returns the mean AP over the table's rows for a level.
func (t Table) MAP(level semindex.Level) float64 {
	sum := 0.0
	for _, r := range t.Rows {
		sum += r.Cells[level].AP
	}
	if len(t.Rows) == 0 {
		return 0
	}
	return sum / float64(len(t.Rows))
}

// SortedLevels returns the table's levels ordered by MAP ascending, for
// sanity assertions about who wins.
func (t Table) SortedLevels() []semindex.Level {
	out := append([]semindex.Level(nil), t.Levels...)
	sort.SliceStable(out, func(i, j int) bool { return t.MAP(out[i]) < t.MAP(out[j]) })
	return out
}
