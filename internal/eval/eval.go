// Package eval implements the retrieval evaluation of Section 4: the ten
// keyword queries of Table 3, relevance judgments derived from the
// simulator's ground-truth event log (substituting for the paper's manual
// assessments), and mean-average-precision scoring in the paper's
// "relevant-found / relevant  percent" reporting format.
package eval

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/semindex"
	"repro/internal/soccer"
)

// Query is one evaluation query: the keyword text users type plus the
// ground-truth relevance predicate.
type Query struct {
	// ID is the paper's label ("Q-1").
	ID string
	// Description paraphrases the information need.
	Description string
	// Keywords is the keyword query submitted to every index.
	Keywords string
	// Relevant decides whether a ground-truth event satisfies the need.
	Relevant func(m *soccer.Match, t *soccer.TruthEvent) bool
}

// PaperQueries returns the Table 3 query set. The named players exist in
// the simulated squads (internal/soccer/names.go), so every query has a
// non-empty relevant set on the default corpus.
func PaperQueries() []Query {
	hasSubject := func(t *soccer.TruthEvent, short string) bool {
		return t.Subject != nil && t.Subject.Short == short
	}
	return []Query{
		{
			ID: "Q-1", Description: "Find all goals", Keywords: "goal",
			Relevant: func(m *soccer.Match, t *soccer.TruthEvent) bool {
				return soccer.IsGoal(t.Kind)
			},
		},
		{
			ID: "Q-2", Description: "Find all goals scored by Barcelona", Keywords: "barcelona goal",
			Relevant: func(m *soccer.Match, t *soccer.TruthEvent) bool {
				return soccer.IsGoal(t.Kind) && soccer.CreditedTeam(m, t) != nil &&
					soccer.CreditedTeam(m, t).Name == "Barcelona"
			},
		},
		{
			ID: "Q-3", Description: "Find all goals scored by Messi at Barcelona", Keywords: "messi barcelona goal",
			Relevant: func(m *soccer.Match, t *soccer.TruthEvent) bool {
				return soccer.IsGoal(t.Kind) && hasSubject(t, "Messi")
			},
		},
		{
			ID: "Q-4", Description: "Find all punishments", Keywords: "punishment",
			Relevant: func(m *soccer.Match, t *soccer.TruthEvent) bool {
				return soccer.KindIn(t.Kind, soccer.PunishmentKinds)
			},
		},
		{
			ID: "Q-5", Description: "Find all yellow cards received by Alex", Keywords: "alex yellow card",
			Relevant: func(m *soccer.Match, t *soccer.TruthEvent) bool {
				return soccer.KindIn(t.Kind, soccer.YellowCardKinds) && hasSubject(t, "Alex")
			},
		},
		{
			ID: "Q-6", Description: "Find all goals scored to Casillas", Keywords: "goal scored to casillas",
			Relevant: func(m *soccer.Match, t *soccer.TruthEvent) bool {
				if !soccer.IsGoal(t.Kind) {
					return false
				}
				conceding := soccer.ConcedingTeam(m, t)
				return conceding != nil && conceding.Goalkeeper() != nil &&
					conceding.Goalkeeper().Short == "Casillas"
			},
		},
		{
			ID: "Q-7", Description: "Find all negative moves of Henry", Keywords: "henry negative moves",
			Relevant: func(m *soccer.Match, t *soccer.TruthEvent) bool {
				return soccer.KindIn(t.Kind, soccer.NegativeKinds) && hasSubject(t, "Henry")
			},
		},
		{
			ID: "Q-8", Description: "Find all events involving Ronaldo", Keywords: "ronaldo",
			Relevant: func(m *soccer.Match, t *soccer.TruthEvent) bool {
				return hasSubject(t, "Ronaldo") || (t.Object != nil && t.Object.Short == "Ronaldo")
			},
		},
		{
			ID: "Q-9", Description: "Find all saves done by the goalkeeper of Barcelona", Keywords: "save goalkeeper barcelona",
			Relevant: func(m *soccer.Match, t *soccer.TruthEvent) bool {
				return soccer.KindIn(t.Kind, soccer.SaveKinds) &&
					t.SubjectTeam != nil && t.SubjectTeam.Name == "Barcelona"
			},
		},
		{
			ID: "Q-10", Description: "Find all shoots delivered by defence players", Keywords: "shoot defence players",
			Relevant: func(m *soccer.Match, t *soccer.TruthEvent) bool {
				return soccer.KindIn(t.Kind, soccer.ShootKinds) &&
					t.Subject != nil && soccer.IsDefencePosition(t.Subject.Position)
			},
		},
	}
}

// TruthRef identifies one ground-truth event.
type TruthRef struct {
	MatchID  string
	TruthIdx int
}

// Judge scores ranked result lists against the corpus ground truth.
type Judge struct {
	corpus  *soccer.Corpus
	matches map[string]*soccer.Match
	// byNarration maps (matchID, narrationIdx) to the truth index.
	byNarration map[TruthRef]int
	// byKey maps (matchID, minute, subject) to candidate truth indexes, for
	// basic-info documents with no narration link.
	byKey map[string][]int
}

// NewJudge indexes the corpus ground truth.
func NewJudge(c *soccer.Corpus) *Judge {
	j := &Judge{
		corpus:      c,
		matches:     map[string]*soccer.Match{},
		byNarration: map[TruthRef]int{},
		byKey:       map[string][]int{},
	}
	for _, m := range c.Matches {
		j.matches[m.ID] = m
		for i, t := range m.Truth {
			if t.NarrationIdx >= 0 {
				j.byNarration[TruthRef{m.ID, t.NarrationIdx}] = i
			}
			subj := ""
			if t.Subject != nil {
				subj = t.Subject.Name
			}
			key := fmt.Sprintf("%s|%d|%s", m.ID, t.Minute, subj)
			j.byKey[key] = append(j.byKey[key], i)
		}
	}
	return j
}

// RelevantSet returns the ground-truth events satisfying the query.
func (j *Judge) RelevantSet(q Query) map[TruthRef]bool {
	out := map[TruthRef]bool{}
	for _, m := range j.corpus.Matches {
		for i := range m.Truth {
			if q.Relevant(m, &m.Truth[i]) {
				out[TruthRef{m.ID, i}] = true
			}
		}
	}
	return out
}

// ResolveHit maps a search hit back to the ground-truth event its document
// describes, via the narration link when present, else the
// kind/minute/subject key. Rule-minted documents (assists) resolve to
// nothing and count as non-relevant for every paper query.
func (j *Judge) ResolveHit(h semindex.Hit) (TruthRef, bool) {
	matchID := h.Meta(semindex.MetaMatchID)
	if matchID == "" {
		return TruthRef{}, false
	}
	if idxStr := h.Meta(semindex.MetaNarration); idxStr != "" && idxStr != "-1" {
		idx, err := strconv.Atoi(idxStr)
		if err == nil {
			if ti, ok := j.byNarration[TruthRef{matchID, idx}]; ok {
				return TruthRef{matchID, ti}, true
			}
		}
	}
	kind := h.Meta(semindex.MetaKind)
	minute := h.Meta(semindex.MetaMinute)
	subject := firstAlt(h.Meta(semindex.MetaSubject))
	for _, ti := range j.byKey[fmt.Sprintf("%s|%s|%s", matchID, minute, subject)] {
		truthKind := string(j.matches[matchID].Truth[ti].Kind)
		// Basic-information documents carry the generic kind ("Goal") while
		// the ground truth records the specific one ("HeaderGoal"); accept
		// either direction of refinement.
		if kind == truthKind || strings.Contains(truthKind, kind) || strings.Contains(kind, truthKind) {
			return TruthRef{matchID, ti}, true
		}
	}
	return TruthRef{}, false
}

func firstAlt(s string) string {
	if i := strings.IndexByte(s, '|'); i >= 0 {
		return s[:i]
	}
	return s
}

// Result is the score of one query against one index.
type Result struct {
	// AP is the average precision in [0, 1].
	AP float64
	// Relevant is |R|, the ground-truth relevant count.
	Relevant int
	// RelevantFound is how many distinct relevant events were retrieved.
	RelevantFound int
}

// Found renders the paper's "x/N" figure: AP·R over R.
func (r Result) Found() string {
	return fmt.Sprintf("%.1f/%d", r.AP*float64(r.Relevant), r.Relevant)
}

// Percent renders AP as the paper's percentage.
func (r Result) Percent() string { return fmt.Sprintf("%.1f%%", r.AP*100) }

// AveragePrecision walks the ranked hits, counting a hit as relevant when
// it resolves to a not-yet-seen relevant ground-truth event (two documents
// describing the same event — e.g. a TRAD narration and a color mention —
// cannot both collect credit).
func (j *Judge) AveragePrecision(q Query, hits []semindex.Hit) Result {
	relevant := j.RelevantSet(q)
	res := Result{Relevant: len(relevant)}
	if len(relevant) == 0 {
		return res
	}
	seen := map[TruthRef]bool{}
	sumPrec := 0.0
	for rank, h := range hits {
		ref, ok := j.ResolveHit(h)
		if !ok || !relevant[ref] || seen[ref] {
			continue
		}
		seen[ref] = true
		res.RelevantFound++
		sumPrec += float64(res.RelevantFound) / float64(rank+1)
	}
	res.AP = sumPrec / float64(len(relevant))
	return res
}

// Evaluate runs a query against an index and scores it. The result list is
// unbounded: average precision over the full ranking, as in the paper.
func (j *Judge) Evaluate(q Query, si *semindex.SemanticIndex) Result {
	return j.AveragePrecision(q, si.Search(q.Keywords, 0))
}
