package eval

import (
	"testing"

	"repro/internal/semindex"
)

func TestRandomizationTestDegenerate(t *testing.T) {
	if p := RandomizationTest(nil, nil, 0, 1); p != 1 {
		t.Errorf("empty inputs p = %f", p)
	}
	if p := RandomizationTest([]float64{1}, []float64{1, 2}, 0, 1); p != 1 {
		t.Errorf("mismatched lengths p = %f", p)
	}
	// Identical systems: every permutation is as extreme, p = 1.
	same := []float64{0.5, 0.6, 0.7, 0.8}
	if p := RandomizationTest(same, same, 0, 1); p != 1 {
		t.Errorf("identical systems p = %f", p)
	}
}

func TestRandomizationTestClearDifference(t *testing.T) {
	// A consistently better on all 10 queries: only the all-same-sign
	// permutations are as extreme -> p = 2/1024.
	a := []float64{.9, .95, .88, .92, .97, .91, .9, .96, .93, .94}
	b := []float64{.1, .15, .12, .2, .18, .11, .14, .19, .13, .16}
	p := RandomizationTest(a, b, 0, 1)
	if p > 0.01 {
		t.Errorf("clear difference p = %f", p)
	}
}

func TestRandomizationTestSampledPath(t *testing.T) {
	// 25 queries forces the sampling branch.
	a := make([]float64, 25)
	b := make([]float64, 25)
	for i := range a {
		a[i] = 0.9
		b[i] = 0.1
	}
	p := RandomizationTest(a, b, 2000, 7)
	if p > 0.01 {
		t.Errorf("sampled clear difference p = %f", p)
	}
}

func TestCompareSystemsTradVsInf(t *testing.T) {
	j := NewJudge(paperCorpus)
	indices := BuildIndices(semindex.NewBuilder(), paperCorpus, semindex.Trad, semindex.FullInf)
	apsT, apsI, p := j.CompareSystems(indices[semindex.FullInf], indices[semindex.Trad])
	if len(apsT) != 10 || len(apsI) != 10 {
		t.Fatalf("AP vectors %d/%d", len(apsT), len(apsI))
	}
	// The paper's headline: semantic indexing beats the traditional
	// baseline decisively; the difference must be significant at 5%.
	if p > 0.05 {
		t.Errorf("FULL_INF vs TRAD p = %f, expected significance", p)
	}
}
