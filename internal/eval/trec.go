package eval

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/semindex"
)

// WriteTrecRun exports ranked results in the standard TREC run format
// ("qid Q0 docno rank score runid"), so the reproduced system's output can
// be scored by trec_eval or compared against other systems with standard
// tooling. Document numbers are matchID#docID, stable across runs of the
// same corpus.
func WriteTrecRun(w io.Writer, runID string, queries []Query, si *semindex.SemanticIndex, depth int) error {
	if depth <= 0 {
		depth = 100
	}
	bw := bufio.NewWriter(w)
	for _, q := range queries {
		hits := si.Search(q.Keywords, depth)
		for rank, h := range hits {
			docno := fmt.Sprintf("%s#%d", h.Meta(semindex.MetaMatchID), h.DocID)
			if _, err := fmt.Fprintf(bw, "%s Q0 %s %d %.6f %s\n",
				q.ID, docno, rank+1, h.Score, runID); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteTrecQrels exports the ground-truth judgments in TREC qrels format
// ("qid 0 docno rel"), pairing with WriteTrecRun. Relevance is judged per
// document: 1 when the document resolves to a relevant ground-truth event.
func (j *Judge) WriteTrecQrels(w io.Writer, queries []Query, si *semindex.SemanticIndex) error {
	bw := bufio.NewWriter(w)
	for _, q := range queries {
		relevant := j.RelevantSet(q)
		for id := 0; id < si.Index.NumDocs(); id++ {
			h := semindex.Hit{DocID: id, Doc: si.Index.Doc(id)}
			rel := 0
			if ref, ok := j.ResolveHit(h); ok && relevant[ref] {
				rel = 1
			}
			docno := fmt.Sprintf("%s#%d", h.Meta(semindex.MetaMatchID), id)
			if _, err := fmt.Fprintf(bw, "%s 0 %s %d\n", q.ID, docno, rel); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
