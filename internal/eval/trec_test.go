package eval

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"repro/internal/crawler"
	"repro/internal/semindex"
	"repro/internal/soccer"
)

func TestWriteTrecRunFormat(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 2, Seed: 42, NarrationsPerMatch: 50, PaperCoverage: true})
	si := semindex.NewBuilder().Build(semindex.FullInf, crawler.PagesFromCorpus(c))
	var buf bytes.Buffer
	if err := WriteTrecRun(&buf, "fullinf", PaperQueries(), si, 10); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		fields := strings.Fields(sc.Text())
		if len(fields) != 6 {
			t.Fatalf("line %d has %d fields: %q", lines, len(fields), sc.Text())
		}
		if fields[1] != "Q0" || fields[5] != "fullinf" {
			t.Errorf("malformed line: %q", sc.Text())
		}
		if !strings.HasPrefix(fields[0], "Q-") {
			t.Errorf("qid = %q", fields[0])
		}
		if !strings.Contains(fields[2], "#") {
			t.Errorf("docno = %q", fields[2])
		}
	}
	if lines == 0 {
		t.Fatal("empty run file")
	}
}

func TestWriteTrecQrelsConsistentWithJudge(t *testing.T) {
	c := soccer.Generate(soccer.Config{Matches: 2, Seed: 42, NarrationsPerMatch: 50, PaperCoverage: true})
	si := semindex.NewBuilder().Build(semindex.FullInf, crawler.PagesFromCorpus(c))
	j := NewJudge(c)
	var buf bytes.Buffer
	if err := j.WriteTrecQrels(&buf, PaperQueries()[:1], si); err != nil {
		t.Fatal(err)
	}
	// The number of rel=1 lines for Q-1 is at least the goal count (several
	// documents can resolve to the same event: the paper's TRAD narration
	// doc and the event doc).
	rel := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		if strings.HasSuffix(sc.Text(), " 1") {
			rel++
		}
	}
	goals := 0
	for _, m := range c.Matches {
		goals += len(m.Goals)
	}
	if rel < goals {
		t.Errorf("qrels mark %d relevant docs for %d goals", rel, goals)
	}
}
