package eval

import (
	"testing"

	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/rdf"
)

// mergedInferredGraph unions the inferred per-match models of the default
// corpus (event IRIs are match-prefixed, so the union is collision-free).
func mergedInferredGraph(t testing.TB) *rdf.Graph {
	t.Helper()
	sys := core.New()
	sys.LoadPages(crawler.PagesFromCorpus(paperCorpus))
	g := rdf.NewGraph()
	for _, page := range sys.Pages() {
		g.AddAll(sys.Infer(page).Model.Graph)
	}
	return g
}

// TestFormalQueriesUpperBound verifies the paper's framing: the formal
// SPARQL formulations of the Table 3 queries achieve perfect precision and
// recall on the inferred knowledge base — the ceiling the keyword system
// approaches.
func TestFormalQueriesUpperBound(t *testing.T) {
	g := mergedInferredGraph(t)
	j := NewJudge(paperCorpus)
	paper := map[string]Query{}
	for _, q := range PaperQueries() {
		paper[q.ID] = q
	}
	for _, fq := range FormalQueries() {
		res := j.EvaluateFormal(fq, paper[fq.ID], g)
		if res.Relevant == 0 {
			t.Errorf("%s: empty relevant set", fq.ID)
			continue
		}
		if res.Precision() < 0.999 {
			t.Errorf("%s: precision = %.3f (retrieved %d, tp %d)", fq.ID, res.Precision(), res.Retrieved, res.TruePositives)
		}
		if res.Recall() < 0.999 {
			t.Errorf("%s: recall = %.3f (relevant %d, tp %d)", fq.ID, res.Recall(), res.Relevant, res.TruePositives)
		}
	}
}

func TestFormalQueriesCoverAllPaperQueries(t *testing.T) {
	ids := map[string]bool{}
	for _, fq := range FormalQueries() {
		ids[fq.ID] = true
		if len(fq.SPARQL) == 0 {
			t.Errorf("%s has no SPARQL", fq.ID)
		}
	}
	for _, q := range PaperQueries() {
		if !ids[q.ID] {
			t.Errorf("no formal query for %s", q.ID)
		}
	}
}

func TestFormalResultEdgeCases(t *testing.T) {
	r := FormalResult{}
	if r.Precision() != 1 || r.Recall() != 1 {
		t.Error("empty/empty should be perfect")
	}
	r = FormalResult{Retrieved: 3, Relevant: 0, TruePositives: 0}
	if r.Precision() != 0 {
		t.Error("retrieved with nothing relevant is precision 0")
	}
	r = FormalResult{Retrieved: 0, Relevant: 5}
	if r.Precision() != 0 || r.Recall() != 0 {
		t.Error("nothing retrieved with relevant set should be 0/0")
	}
}

func TestExecFormalDeterministicUnion(t *testing.T) {
	g := mergedInferredGraph(t)
	fq := FormalQueries()[0] // Q-1, a two-branch union
	a := ExecFormal(fq, g)
	b := ExecFormal(fq, g)
	if len(a) != len(b) {
		t.Fatal("union size unstable")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("union order unstable")
		}
	}
	seen := map[rdf.Term]bool{}
	for _, e := range a {
		if seen[e] {
			t.Fatalf("duplicate %v in union", e)
		}
		seen[e] = true
	}
}
