package inference

import (
	"testing"

	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/soccer"
)

func setup(t testing.TB) (*owl.Ontology, *reasoner.Reasoner) {
	t.Helper()
	ont := soccer.BuildOntology()
	return ont, reasoner.New(ont)
}

// TestAssistRuleFig6 exercises the full Fig. 6 scenario through the joint
// reasoner+rules fixpoint: a LongPass (not a Pass — closure required) and a
// goal in the same minute with receiver == scorer must mint one Assist,
// which then gets its own class closure and actor properties.
func TestAssistRuleFig6(t *testing.T) {
	ont, r := setup(t)
	m := owl.NewModel(ont)
	match := m.NamedIndividual("Match_1", "Match")
	iniesta := m.NamedIndividual("Iniesta", "AttackingMidfielder")
	etoo := m.NamedIndividual("Etoo", "CenterForward")

	pass := m.NewIndividual("LongPass")
	m.Set(pass, "passingPlayer", iniesta)
	m.Set(pass, "passReceiver", etoo)
	m.Set(pass, "inMatch", match)
	m.SetInt(pass, "inMinute", 10)

	goal := m.NewIndividual("Goal")
	m.Set(goal, "scorerPlayer", etoo)
	m.Set(goal, "inMatch", match)
	m.SetInt(goal, "inMinute", 10)

	res := Run(r, soccer.Rules(), m)
	g := res.Model.Graph

	assists := g.Subjects(rdf.RDFType, ont.IRI("Assist"))
	if len(assists) != 1 {
		t.Fatalf("%d assists minted", len(assists))
	}
	a := assists[0]
	if g.FirstObject(a, ont.IRI("passingPlayer")) != iniesta {
		t.Error("assist passer wrong")
	}
	// The assist is lifted to PositiveEvent/Event by the second closure pass.
	if !g.HasSPO(a, rdf.RDFType, ont.IRI("PositiveEvent")) {
		t.Error("assist missing class closure")
	}
	// The actor rule + property closure reaches actorOfPositiveMove.
	if !g.HasSPO(iniesta, ont.IRI("actorOfPositiveMove"), a) {
		t.Error("actorOfPositiveMove not derived for the assist")
	}
	// Provenance names the assist rule.
	tr := rdf.NewTriple(a, rdf.RDFType, ont.IRI("Assist"))
	if res.RuleProvenance[tr] != "assistRule" {
		t.Errorf("provenance = %q", res.RuleProvenance[tr])
	}
	// Input untouched.
	if len(m.Graph.Subjects(rdf.RDFType, ont.IRI("Assist"))) != 0 {
		t.Error("Run mutated its input model")
	}
}

// TestScoredToGoalkeeperChain checks the Q-6 inference chain end to end:
// goal -> scoringTeam -> concedingTeam (rule, via match structure) ->
// scoredToGoalkeeper (rule, via hasGoalkeeper) -> objectPlayer (closure).
func TestScoredToGoalkeeperChain(t *testing.T) {
	ont, r := setup(t)
	m := owl.NewModel(ont)
	match := m.NamedIndividual("Match_1", "Match")
	united := m.NamedIndividual("United", "Team")
	real := m.NamedIndividual("Real", "Team")
	m.Set(match, "homeTeam", real)
	m.Set(match, "awayTeam", united)
	casillas := m.NamedIndividual("Casillas", "GoalkeeperPlayer")
	m.Set(real, "hasGoalkeeper", casillas)
	rooney := m.NamedIndividual("Rooney", "CenterForward")
	m.Set(rooney, "playsFor", united)

	goal := m.NewIndividual("Goal")
	m.Set(goal, "scorerPlayer", rooney)
	m.Set(goal, "inMatch", match)
	m.SetInt(goal, "inMinute", 30)

	res := Run(r, soccer.Rules(), m)
	g := res.Model.Graph
	if !g.HasSPO(goal, ont.IRI("scoringTeam"), united) {
		t.Error("scoringTeam not derived from playsFor")
	}
	if !g.HasSPO(goal, ont.IRI("concedingTeam"), real) {
		t.Error("concedingTeam not derived from match structure")
	}
	if !g.HasSPO(goal, ont.IRI("scoredToGoalkeeper"), casillas) {
		t.Error("scoredToGoalkeeper not derived")
	}
	if !g.HasSPO(goal, ont.IRI("objectPlayer"), casillas) {
		t.Error("scoredToGoalkeeper not lifted to objectPlayer")
	}
}

func TestRunReachesFixpoint(t *testing.T) {
	ont, r := setup(t)
	m := owl.NewModel(ont)
	goal := m.NewIndividual("HeaderGoal")
	m.Set(goal, "scorerPlayer", m.NamedIndividual("Messi", "RightWinger"))
	res := Run(r, soccer.Rules(), m)
	// Running again over the output must add nothing.
	res2 := Run(r, soccer.Rules(), res.Model)
	if res2.Model.Graph.Len() != res.Model.Graph.Len() {
		t.Errorf("second Run grew the graph: %d -> %d",
			res.Model.Graph.Len(), res2.Model.Graph.Len())
	}
}

func TestWinnerRule(t *testing.T) {
	ont, r := setup(t)
	m := owl.NewModel(ont)
	match := m.NamedIndividual("Match_1", "Match")
	a := m.NamedIndividual("A", "Team")
	b := m.NamedIndividual("B", "Team")
	m.Set(match, "homeTeam", a)
	m.Set(match, "awayTeam", b)
	m.SetInt(match, "homeScore", 3)
	m.SetInt(match, "awayScore", 1)
	res := Run(r, soccer.Rules(), m)
	if res.Model.Graph.FirstObject(match, ont.IRI("winnerTeam")) != a {
		t.Error("winnerTeam wrong")
	}
	if res.Model.Graph.FirstObject(match, ont.IRI("loserTeam")) != b {
		t.Error("loserTeam wrong")
	}
}
