// Package inference orchestrates the offline reasoning stage of Section
// 3.5: DL materialization (classification, realization, property closure,
// restriction and domain/range inference) interleaved with forward rule
// application, iterated to a joint fixpoint.
//
// Interleaving matters: the assist rule matches pre:Pass, which individuals
// asserted as pre:LongPass only satisfy after type closure; conversely the
// actorOf* assertions the rules produce only reach actorOfNegativeMove
// through the reasoner's property closure. Two or three rounds reach the
// fixpoint on soccer models.
package inference

import (
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/rules"
)

// Result is the inferred model plus rule provenance.
type Result struct {
	// Model is the saturated ABox.
	Model *owl.Model
	// RuleProvenance maps each rule-derived triple to the rule name, feeding
	// the FromRules index field of Table 2.
	RuleProvenance map[rdf.Triple]string
}

// Run saturates the model under the reasoner and rule set. The input model
// is not modified.
func Run(r *reasoner.Reasoner, ruleSet []*rules.Rule, m *owl.Model) Result {
	eng := rules.NewEngine(ruleSet)
	provenance := map[rdf.Triple]string{}
	inf := r.Materialize(m)
	for {
		added := eng.Run(inf.Graph)
		for t, rule := range eng.Derived() {
			provenance[t] = rule
		}
		if added == 0 {
			return Result{Model: inf, RuleProvenance: provenance}
		}
		inf = r.Materialize(inf)
	}
}
